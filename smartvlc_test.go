package smartvlc

import (
	"bytes"
	"math"
	"runtime/debug"
	"testing"
)

func newSystem(t testing.TB) *System {
	t.Helper()
	sys, err := New(DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewRejectsBadConstraints(t *testing.T) {
	c := DefaultConstraints()
	c.SlotSeconds = -1
	if _, err := New(c); err == nil {
		t.Fatal("bad constraints accepted")
	}
}

func TestBuildParseFrameRoundTrip(t *testing.T) {
	sys := newSystem(t)
	for _, level := range []float64{0.1, 0.33, 0.5, 0.9} {
		payload := []byte("smartvlc public api payload")
		slots, err := sys.BuildFrame(level, payload)
		if err != nil {
			t.Fatalf("level %v: %v", level, err)
		}
		got, err := sys.ParseFrame(slots)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("level %v: %v, %v", level, got, err)
		}
		n, err := sys.FrameSlots(level, len(payload))
		if err != nil || n != len(slots) {
			t.Fatalf("FrameSlots = %d want %d (%v)", n, len(slots), err)
		}
	}
}

func TestPlanAndEnvelope(t *testing.T) {
	sys := newSystem(t)
	lo, hi := sys.LevelRange()
	if lo != 0 || hi != 1 {
		t.Fatalf("level range [%v, %v]", lo, hi)
	}
	s, err := sys.PlanFor(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Level()-0.3) > 0.005 {
		t.Fatalf("plan level %v", s.Level())
	}
	if sys.EnvelopeRateAt(0.5) < 0.9 {
		t.Fatalf("envelope at 0.5 = %v", sys.EnvelopeRateAt(0.5))
	}
	if len(sys.Vertices()) < 10 {
		t.Fatal("too few vertices")
	}
	if r := sys.DimmingResolution(100); r > 0.005 {
		t.Fatalf("resolution %v", r)
	}
	// Ideal PHY rate at l=0.5 ≈ 0.93 × 125 kHz ≈ 116 kbps.
	if tp := sys.Throughput(0.5); tp < 100e3 || tp > 125e3 {
		t.Fatalf("Throughput(0.5) = %v", tp)
	}
}

func TestLinkQuality(t *testing.T) {
	// The paper's measured worst case.
	p1, p2, err := LinkQuality(Aligned(3.6, 0), 9700)
	if err != nil {
		t.Fatal(err)
	}
	if p1 < 1e-5 || p1 > 1e-3 || p2 < 1e-5 || p2 > 1e-3 {
		t.Fatalf("P1=%v P2=%v", p1, p2)
	}
	if _, _, err := LinkQuality(Geometry{}, 100); err == nil {
		t.Fatal("bad geometry accepted")
	}
}

func TestSchemeConstructors(t *testing.T) {
	if NewOOKCT().Name() != "OOK-CT" {
		t.Fatal("OOKCT")
	}
	if NewVPPM().Name() != "VPPM" {
		t.Fatal("VPPM")
	}
	m, err := NewMPPM(20)
	if err != nil || m.Name() != "MPPM" {
		t.Fatal("MPPM")
	}
	a, err := NewAMPPMScheme(DefaultConstraints())
	if err != nil || a.Name() != "AMPPM" {
		t.Fatal("AMPPM")
	}
}

func TestRunSessionSmoke(t *testing.T) {
	sys := newSystem(t)
	cfg := DefaultSessionConfig(sys.Scheme())
	cfg.FixedLevel = 0.5
	res, err := RunSession(cfg, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if res.GoodputBps < 50e3 {
		t.Fatalf("goodput %v", res.GoodputBps)
	}
}

func TestDynamicSessionWithPublicHelpers(t *testing.T) {
	sys := newSystem(t)
	cfg := DefaultSessionConfig(sys.Scheme())
	cfg.Trace = BlindPull(50, 450, 5)
	cfg.FullLEDLux = 500
	cfg.Stepper = PerceivedStepper
	res, err := RunSession(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adjustments == 0 {
		t.Fatal("no adaptation happened")
	}
	if StaticAmbient(123).LuxAt(0) != 123 {
		t.Fatal("StaticAmbient")
	}
	if MeasuredStepper.Name() == PerceivedStepper.Name() {
		t.Fatal("steppers should differ")
	}
}

func TestSBuildsPatterns(t *testing.T) {
	p := S(20, 0.5)
	if p.N != 20 || p.K != 10 {
		t.Fatalf("%+v", p)
	}
}

func TestTraceHelpers(t *testing.T) {
	if CloudyAmbient(1000, 0.5, 10).LuxAt(0) <= 0 {
		t.Fatal("cloudy trace")
	}
	d := DayCycleAmbient(800, 100, 0.4, 7)
	if d.LuxAt(0) != 0 || d.LuxAt(50) <= 0 {
		t.Fatal("day cycle trace")
	}
	clear := DayCycleAmbient(800, 100, 0, 0)
	if clear.LuxAt(50) != 800 {
		t.Fatalf("clear midday = %v", clear.LuxAt(50))
	}
}

func TestNewOPPMFacade(t *testing.T) {
	o, err := NewOPPM(20)
	if err != nil || o.Name() != "OPPM" {
		t.Fatalf("NewOPPM: %v", err)
	}
}

func TestFrameSlotsErrorPath(t *testing.T) {
	sys := newSystem(t)
	if _, err := sys.FrameSlots(-1, 10); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := sys.BuildFrame(-1, nil); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := sys.ParseFrame(make([]bool, 10)); err == nil {
		t.Fatal("garbage slots accepted")
	}
}

func TestDeliverValidation(t *testing.T) {
	sys := newSystem(t)
	if _, err := sys.Deliver(Geometry{}, 100, 1, make([]bool, 100)); err == nil {
		t.Fatal("bad geometry accepted")
	}
}

func TestRunBroadcastFacade(t *testing.T) {
	sys := newSystem(t)
	cfg := BroadcastConfig{
		Config:    DefaultSessionConfig(sys.Scheme()),
		Receivers: []ReceiverPose{{Geometry: Aligned(2, 0)}},
	}
	res, err := RunBroadcast(cfg, 0.3)
	if err != nil || res.ReliableGoodputBps <= 0 {
		t.Fatalf("broadcast: %v %v", res.ReliableGoodputBps, err)
	}
}

func TestVersionNonEmpty(t *testing.T) {
	if Version == "" {
		t.Fatal("version")
	}
}

// TestDeliverIntoZeroAllocSteadyState pins the whole TX→channel→RX
// pipeline at zero allocations per frame once the session's scratch is
// warm — the contract the batched columnar pipeline exists to provide.
// GC is disabled around the measurement so a background cycle cannot
// strip the pools mid-run.
func TestDeliverIntoZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	sys := newSystem(t)
	payload := make([]byte, 128)
	slots, err := sys.BuildFrame(0.5, payload)
	if err != nil {
		t.Fatal(err)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var rep DeliverReport
	if err := sys.DeliverInto(&rep, Aligned(3, 0), 8000, 1, slots); err != nil {
		t.Fatal(err)
	}
	seed := uint64(2)
	if n := testing.AllocsPerRun(20, func() {
		if err := sys.DeliverInto(&rep, Aligned(3, 0), 8000, seed, slots); err != nil {
			t.Fatal(err)
		}
		seed++
	}); n != 0 {
		t.Errorf("DeliverInto steady state: %v allocs/op", n)
	}
}
