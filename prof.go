package smartvlc

import "smartvlc/internal/telemetry/prof"

// Stage-profiler re-exports, so applications never import internal
// packages. The profiler is the deterministic, sim-domain twin of a CPU
// profile: per-stage cost counters (samples, slots, symbols, bytes,
// deterministic scratch-growth events) keyed by stage × scheme × dimming
// level × shard, byte-identical per seed for every worker count.
type (
	// Profiler accumulates stage costs for one session; arm it via
	// SessionConfig.Prof. A nil profiler everywhere is a no-op and keeps
	// the hot paths allocation-free.
	Profiler = prof.Profiler
	// ProfStage is one series' recording handle; all adders no-op on nil.
	ProfStage = prof.Stage
	// ProfSnapshot is a canonical point-in-time export of a profiler,
	// serializable as JSON or folded-stack text (flame-graph input).
	ProfSnapshot = prof.Snapshot
	// ProfSeries is one labeled series of a snapshot: its key plus counts.
	ProfSeries = prof.Series
	// ProfKey identifies a series: stage, scheme, dimming level, shard.
	ProfKey = prof.Key
	// ProfCounts holds one series' six cost counters.
	ProfCounts = prof.Counts
	// ProfMetric names one cost dimension (ops, samples, slots, symbols,
	// bytes, allocs) for folded export and diffing.
	ProfMetric = prof.Metric
	// ProfDelta is one series' before/after counts from DiffProf.
	ProfDelta = prof.Delta
)

// Cost dimensions of a profile series.
const (
	ProfOps     = prof.MetricOps
	ProfSamples = prof.MetricSamples
	ProfSlots   = prof.MetricSlots
	ProfSymbols = prof.MetricSymbols
	ProfBytes   = prof.MetricBytes
	ProfAllocs  = prof.MetricAllocs
)

// NewProfiler returns an empty stage profiler (series cardinality bounded
// at prof.DefaultMaxSeries; excess series fold into an overflow bucket)
// to pass to SessionConfig.Prof.
func NewProfiler() *Profiler { return prof.New() }

// MergeProf combines per-session profile snapshots into one aggregate:
// counts sum per series key. The fold is deterministic in argument order;
// nil snapshots are skipped. RunFleet applies this to its sessions
// already.
func MergeProf(snaps ...*ProfSnapshot) *ProfSnapshot { return prof.Merge(snaps...) }

// DiffProf compares two profiles series-by-series (union of keys, in
// canonical order) for regression hunting; see ProfDelta.
func DiffProf(a, b *ProfSnapshot) []ProfDelta { return prof.Diff(a, b) }

// ParseProfSnapshot loads a profile snapshot written as canonical JSON
// (ProfSnapshot.JSON), e.g. the smartvlc-sim -prof-out artifact.
func ParseProfSnapshot(b []byte) (*ProfSnapshot, error) { return prof.ParseSnapshot(b) }
