package smartvlc

import (
	"bytes"
	"testing"
)

// streamSpanJSON writes data through an instrumented stream and returns
// the canonical JSON of its span snapshot.
func streamSpanJSON(t *testing.T) ([]byte, *SpanSnapshot) {
	t.Helper()
	sys := newSystem(t)
	st, err := sys.OpenStream(Aligned(3, 0), 8000, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	col := NewSpanCollector()
	st.SetSpans(col)
	if _, err := st.Write(make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	j, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return j, snap
}

// TestStreamSpans pins the stream instrumentation: one "chunk" root per
// chunk with per-attempt "chunk/tx" children on the stream's simulated
// clock, deterministic across identically seeded streams.
func TestStreamSpans(t *testing.T) {
	j1, snap := streamSpanJSON(t)
	j2, _ := streamSpanJSON(t)
	if !bytes.Equal(j1, j2) {
		t.Fatal("identically seeded streams exported different span JSON")
	}

	roots, txs := 0, 0
	for _, s := range snap.Spans {
		switch s.Name {
		case "chunk":
			roots++
			if out, _ := s.Attr("outcome"); out != "ok" {
				t.Fatalf("chunk outcome %q: %+v", out, s)
			}
			if lvl, _ := s.Attr("level"); lvl != "0.5" {
				t.Fatalf("chunk level %q", lvl)
			}
		case "chunk/tx":
			txs++
			if s.Parent == 0 {
				t.Fatalf("chunk/tx not parented: %+v", s)
			}
		default:
			t.Fatalf("unexpected span %q in stream trace", s.Name)
		}
	}
	// 512 bytes at 126 bytes per chunk = 5 chunks; at least one attempt
	// per chunk.
	if roots != 5 {
		t.Fatalf("%d chunk roots, want 5", roots)
	}
	if txs < roots {
		t.Fatalf("%d chunk/tx spans for %d chunks", txs, roots)
	}
	for _, s := range snap.Spans {
		if s.End < s.Start {
			t.Fatalf("span runs backwards: %+v", s)
		}
	}
}

// TestDeliverStatsSpans pins the one-shot facade instrumentation: each
// DeliverStats call records a "deliver" root with the receiver's decode
// subtree spliced underneath.
func TestDeliverStatsSpans(t *testing.T) {
	sys := newSystem(t)
	col := NewSpanCollector()
	sys.SetSpans(col)
	slots, err := sys.BuildFrame(0.5, []byte("span facade test payload"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.DeliverStats(Aligned(3, 0), 8000, 7, slots)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesOK != 1 {
		t.Fatalf("frame lost: %+v", rep)
	}
	snap := col.Snapshot()
	var root *Span
	sawDecode := false
	for i, s := range snap.Spans {
		switch s.Name {
		case "deliver":
			root = &snap.Spans[i]
		case "phy/decode":
			sawDecode = true
		}
	}
	if root == nil {
		t.Fatal("no deliver root span")
	}
	if !sawDecode {
		t.Fatal("no decode span under deliver root")
	}
	if thr, ok := root.Attr("threshold"); !ok || thr == "" {
		t.Error("deliver root missing threshold attribute")
	}
}
