// Benchmark harness: one benchmark per table and figure of the SmartVLC
// paper's evaluation, plus ablations of the design choices called out in
// DESIGN.md. Each benchmark regenerates its figure from scratch per
// iteration and reports the headline numbers as custom metrics, so
// `go test -bench=. -benchmem` doubles as the reproduction record
// (bench_output.txt in EXPERIMENTS.md).
package smartvlc

import (
	"testing"

	"smartvlc/internal/amppm"
	"smartvlc/internal/experiments"
	"smartvlc/internal/flicker"
	"smartvlc/internal/light"
	"smartvlc/internal/mppm"
	"smartvlc/internal/sim"
)

// benchOpts keeps the per-point simulation time short enough for the
// whole suite to run in minutes; raise SecondsPerPoint for tighter error
// bars (the paper runs 30 s per point).
var benchOpts = experiments.LinkOptions{SecondsPerPoint: 0.25, Seed: 1}

func BenchmarkFig04_MPPMSERvsDimming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig4()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(mppm.SER(120, 60, experiments.PaperP1, experiments.PaperP2)*1e3, "SER(N=120,l=0.5)_x1e-3")
}

func BenchmarkFig06_MultiplexedDimmingLevels(b *testing.B) {
	var nBefore, nAfter int
	for i := 0; i < b.N; i++ {
		before, after, _ := experiments.Fig6()
		nBefore, nAfter = len(before), len(after)
	}
	b.ReportMetric(float64(nBefore), "levels_before")
	b.ReportMetric(float64(nAfter), "levels_after")
}

func BenchmarkFig08_SERPruning(b *testing.B) {
	kept := 0
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig8(2.5e-3)
		kept = 0
		for _, r := range rows {
			if r.Kept {
				kept++
			}
		}
	}
	b.ReportMetric(float64(kept), "patterns_kept")
}

func BenchmarkFig09_SlopeWalkEnvelope(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig9()
		for _, r := range rows {
			if r.EnvelopeRate > peak {
				peak = r.EnvelopeRate
			}
		}
	}
	b.ReportMetric(peak, "peak_bits_per_slot")
}

func BenchmarkFig10_AdaptationDomains(b *testing.B) {
	var rows []experiments.Fig10Row
	for i := 0; i < b.N; i++ {
		rows, _ = experiments.Fig10(0.2, 0.8)
	}
	b.ReportMetric(float64(len(rows)), "max_steps")
}

func BenchmarkTable2_FlickerUserStudy(b *testing.B) {
	var safe float64
	for i := 0; i < b.N; i++ {
		experiments.Table2()
		safe = flicker.NewPopulation(20).SafeResolution()
	}
	b.ReportMetric(safe*1e3, "safe_resolution_x1e-3")
}

func BenchmarkFig15_ThroughputVsDimming(b *testing.B) {
	var res experiments.Fig15Result
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = experiments.Fig15(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[8].AMPPM, "amppm_kbps_l0.50")
	b.ReportMetric(res.Rows[0].AMPPM, "amppm_kbps_l0.10")
	b.ReportMetric(res.Rows[0].OOKCT, "ookct_kbps_l0.10")
	b.ReportMetric(res.Rows[0].MPPMKbps, "mppm_kbps_l0.10")
	b.ReportMetric(res.AvgOverOOKCT*100, "avg_gain_vs_ookct_pct")
	b.ReportMetric(res.AvgOverMPPM*100, "avg_gain_vs_mppm_pct")
	b.ReportMetric(res.MaxOverOOKCT*100, "max_gain_vs_ookct_pct")
	b.ReportMetric(res.MaxOverMPPM*100, "max_gain_vs_mppm_pct")
}

func BenchmarkFig16_ThroughputVsDistance(b *testing.B) {
	var rows []experiments.Fig16Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.Fig16(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Locate the range cliff: last distance with >50% of the 1 m rate.
	ref := rows[2].Kbps[0.5]
	cliff := 0.0
	for _, r := range rows {
		if r.Kbps[0.5] > ref/2 {
			cliff = r.DistanceM
		}
	}
	b.ReportMetric(cliff, "range_m")
	b.ReportMetric(rows[10].Kbps[0.5], "kbps_at_3m_l0.5")
}

func BenchmarkFig17_ThroughputVsAngle(b *testing.B) {
	var rows []experiments.Fig17Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.Fig17(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	cutoff := func(d float64) float64 {
		ref := rows[0].Kbps[d]
		last := 0.0
		for _, r := range rows {
			if r.Kbps[d] > ref/2 {
				last = r.AngleDeg
			}
		}
		return last
	}
	b.ReportMetric(cutoff(1.3), "cutoff_deg_1.3m")
	b.ReportMetric(cutoff(2.3), "cutoff_deg_2.3m")
	b.ReportMetric(cutoff(3.3), "cutoff_deg_3.3m")
}

func BenchmarkFig19_DynamicScenario(b *testing.B) {
	var res experiments.Fig19Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig19(experiments.Fig19Options{Duration: 12, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.SmartVLCAdjustments), "smartvlc_adjustments")
	b.ReportMetric(float64(res.ExistingAdjustments), "existing_adjustments")
	b.ReportMetric(100*(1-float64(res.SmartVLCAdjustments)/float64(res.ExistingAdjustments)), "reduction_pct")
}

// --- Ablations (design choices discussed in DESIGN.md §4) ---

// BenchmarkAblation_EnvelopeVsNaive compares AMPPM's envelope selection
// against the "best single pattern per level" strategy (paper Fig. 9's
// red curve): the envelope's rate advantage at off-grid levels.
func BenchmarkAblation_EnvelopeVsNaive(b *testing.B) {
	tab, err := amppm.NewTable(amppm.DefaultConstraints())
	if err != nil {
		b.Fatal(err)
	}
	var envSum, naiveSum float64
	for i := 0; i < b.N; i++ {
		envSum, naiveSum = 0, 0
		for l := 0.1; l <= 0.9; l += 0.005 {
			envSum += tab.EnvelopeRateAt(l)
			naiveSum += tab.BestSingleRateAt(l, 0.0025)
		}
	}
	b.ReportMetric(envSum/naiveSum, "envelope_vs_naive_rate_ratio")
}

// BenchmarkAblation_CombinadicVsTable motivates the combinadic codec
// (paper §4.4): table-based mapping for S(50,25) would need ~126 TB; the
// combinadic codec encodes in O(N) time and O(N·K) memory.
func BenchmarkAblation_CombinadicVsTable(b *testing.B) {
	c := mppm.NewCodec(mppm.Pattern{N: 50, K: 25})
	buf := make([]bool, 50)
	mask := uint64(1)<<uint(c.Bits()) - 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(uint64(i)&mask, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.Bits()), "bits_per_symbol")
}

// BenchmarkAblation_FlickerCap sweeps the Type-I flicker threshold: a
// higher f_th shrinks Nmax, which coarsens the dimming resolution.
func BenchmarkAblation_FlickerCap(b *testing.B) {
	var resolutions []float64
	for i := 0; i < b.N; i++ {
		resolutions = resolutions[:0]
		for _, fth := range []float64{125, 250, 500, 1000} {
			cons := amppm.DefaultConstraints()
			cons.FlickerHz = fth
			tab, err := amppm.NewTable(cons)
			if err != nil {
				b.Fatal(err)
			}
			resolutions = append(resolutions, tab.Resolution(100))
		}
	}
	b.ReportMetric(resolutions[1]*1e3, "resolution_fth250_x1e-3")
	b.ReportMetric(resolutions[3]*1e3, "resolution_fth1000_x1e-3")
}

// BenchmarkAblation_PayloadSize shows the paper's observation that small
// payloads erode AMPPM's gain (fixed header + compensation overhead).
func BenchmarkAblation_PayloadSize(b *testing.B) {
	a, _, _, err := experiments.Schemes()
	if err != nil {
		b.Fatal(err)
	}
	goodput := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, size := range []int{16, 128, 1024} {
			cfg := sim.DefaultConfig(a)
			cfg.FixedLevel = 0.3
			cfg.PayloadBytes = size
			cfg.Seed = uint64(size)
			r, err := sim.Run(cfg, 0.25)
			if err != nil {
				b.Fatal(err)
			}
			goodput[size] = r.GoodputBps / 1000
		}
	}
	b.ReportMetric(goodput[16], "kbps_payload16B")
	b.ReportMetric(goodput[128], "kbps_payload128B")
	b.ReportMetric(goodput[1024], "kbps_payload1024B")
}

// BenchmarkAblation_SERBound sweeps the pattern-pruning bound: looser
// bounds admit longer symbols (higher rate) at higher symbol error rates.
func BenchmarkAblation_SERBound(b *testing.B) {
	rates := map[float64]float64{}
	for i := 0; i < b.N; i++ {
		for _, bound := range []float64{1e-3, 5e-3, 2e-2} {
			cons := amppm.DefaultConstraints()
			cons.SERBound = bound
			tab, err := amppm.NewTable(cons)
			if err != nil {
				b.Fatal(err)
			}
			rates[bound] = tab.EnvelopeRateAt(0.5)
		}
	}
	b.ReportMetric(rates[1e-3], "rate_bound1e-3")
	b.ReportMetric(rates[5e-3], "rate_bound5e-3")
	b.ReportMetric(rates[2e-2], "rate_bound2e-2")
}

// BenchmarkAblation_Steppers isolates the adaptation comparison of
// Fig. 19(c) without the link simulation.
func BenchmarkAblation_Steppers(b *testing.B) {
	var np, nm int
	for i := 0; i < b.N; i++ {
		np = len(light.PerceivedStepper{TauP: light.DefaultTauP}.Plan(0.1, 0.9))
		nm = len(light.SafeMeasuredStepper(light.DefaultTauP, 0.1).Plan(0.1, 0.9))
	}
	b.ReportMetric(float64(np), "perceived_steps")
	b.ReportMetric(float64(nm), "measured_steps")
}

// BenchmarkEndToEndFrame measures the full TX→channel→RX pipeline cost
// for one 128-byte frame at the paper's operating point.
func BenchmarkEndToEndFrame(b *testing.B) {
	sys, err := New(DefaultConstraints())
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 128)
	slots, err := sys.BuildFrame(0.5, payload)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	misses := 0
	var rep DeliverReport
	for i := 0; i < b.N; i++ {
		if err := sys.DeliverInto(&rep, Aligned(3, 0), 8000, uint64(i), slots); err != nil {
			b.Fatal(err)
		}
		if len(rep.Payloads) != 1 {
			misses++ // rare phase corners lose a frame; the ARQ covers them
		}
	}
	if misses > b.N/20+1 {
		b.Fatalf("%d/%d frames lost", misses, b.N)
	}
	b.ReportMetric(float64(misses)/float64(b.N)*100, "frame_loss_pct")
}

// BenchmarkBroadcast3Receivers measures the multi-receiver extension:
// reliable multicast to three desks.
func BenchmarkBroadcast3Receivers(b *testing.B) {
	sys, err := New(DefaultConstraints())
	if err != nil {
		b.Fatal(err)
	}
	cfg := BroadcastConfig{
		Config: DefaultSessionConfig(sys.Scheme()),
		Receivers: []ReceiverPose{
			{Geometry: Aligned(1.8, 0)},
			{Geometry: Aligned(2.6, 4)},
			{Geometry: Aligned(3.3, 7)},
		},
	}
	var reliable float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := RunBroadcast(cfg, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		reliable = res.ReliableGoodputBps / 1000
	}
	b.ReportMetric(reliable, "reliable_kbps")
}

// BenchmarkStreamTransfer measures the byte-pipe API end to end.
func BenchmarkStreamTransfer(b *testing.B) {
	sys, err := New(DefaultConstraints())
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4096)
	var effective float64
	for i := 0; i < b.N; i++ {
		st, err := sys.OpenStream(Aligned(3, 0), 8000, 0.5, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.Write(data); err != nil {
			b.Fatal(err)
		}
		effective = float64(len(data)*8) / st.AirtimeSeconds() / 1000
	}
	b.ReportMetric(effective, "effective_kbps")
}

// BenchmarkAblation_CompensationFreeSchemes runs the full link at l=0.3
// for every compensation-free scheme, confirming the rate hierarchy that
// made the paper build AMPPM on MPPM: AMPPM > MPPM > OPPM > VPPM.
func BenchmarkAblation_CompensationFreeSchemes(b *testing.B) {
	a, err := NewAMPPMScheme(DefaultConstraints())
	if err != nil {
		b.Fatal(err)
	}
	m, _ := NewMPPM(20)
	o, _ := NewOPPM(20)
	v := NewVPPM()
	out := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, s := range []Scheme{a, m, o, v} {
			cfg := DefaultSessionConfig(s)
			cfg.FixedLevel = 0.3
			r, err := RunSession(cfg, 0.25)
			if err != nil {
				b.Fatal(err)
			}
			out[s.Name()] = r.GoodputBps / 1000
		}
	}
	b.ReportMetric(out["AMPPM"], "amppm_kbps")
	b.ReportMetric(out["MPPM"], "mppm_kbps")
	b.ReportMetric(out["OPPM"], "oppm_kbps")
	b.ReportMetric(out["VPPM"], "vppm_kbps")
}

// BenchmarkAblation_UplinkWiFiVsVLC compares the prototype's Wi-Fi ACK
// channel with the future-work VLC return link.
func BenchmarkAblation_UplinkWiFiVsVLC(b *testing.B) {
	sys, err := New(DefaultConstraints())
	if err != nil {
		b.Fatal(err)
	}
	out := map[string]float64{}
	for i := 0; i < b.N; i++ {
		wifi := DefaultSessionConfig(sys.Scheme())
		wifi.Geometry = Aligned(2.0, 0)
		rw, err := RunSession(wifi, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		out["wifi"] = rw.GoodputBps / 1000

		vlc := wifi
		vlc.UplinkVLCBitRate = 10e3
		rv, err := RunSession(vlc, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		out["vlc"] = rv.GoodputBps / 1000
	}
	b.ReportMetric(out["wifi"], "wifi_uplink_kbps")
	b.ReportMetric(out["vlc"], "vlc_uplink_kbps")
}
