package smartvlc

import (
	"io"

	"smartvlc/internal/telemetry/agg"
)

// Streaming fleet-aggregation re-exports, so applications never import
// internal packages. The aggregator is the live counterpart of
// MergeTelemetry: sessions stream delta snapshots into it at sim-clock
// window boundaries while the fleet runs, and its Snapshot — fleet
// window rollups plus the worst-sessions tables — is byte-identical for
// every worker count and GOMAXPROCS.
type (
	// FleetAggregator folds per-session telemetry deltas into fleet-wide
	// windowed rollups and deterministic top-K worst-session tables while
	// the fleet is still running. Create one with NewFleetAggregator,
	// register each session via Feed, and pass the feeds through
	// SessionConfig.Watch; RunFleet leaves the final snapshot in
	// FleetResult.Agg, and Snapshot may be called live at any time.
	FleetAggregator = agg.Aggregator
	// FleetAggConfig parameterizes a FleetAggregator: window width on the
	// sim clock, rollup pyramid depth/factor, retention capacity and the
	// worst-sessions table bound K.
	FleetAggConfig = agg.Config
	// FleetAggSnapshot is a canonical point-in-time export of a
	// FleetAggregator: the rollup pyramid plus the worst-SER, worst-burn
	// and slowest-ACK tables. Serves as JSON (smartvlc-sim -agg-out,
	// GET /fleet) or NDJSON (GET /fleet/stream).
	FleetAggSnapshot = agg.Snapshot
	// FleetAggPoint is one sealed fleet window (or coarser rollup): exact
	// summed counts plus the rates derived from them.
	FleetAggPoint = agg.Point
	// FleetAggSeries is one rollup resolution's retained points.
	FleetAggSeries = agg.Series
	// FleetSessionMeta identifies one session to the aggregator: its
	// config-order index (the fold order and top-K tie-break), seed,
	// scheme and payload size.
	FleetSessionMeta = agg.SessionMeta
	// FleetFeed is one session's delta channel into the aggregator; pass
	// it via SessionConfig.Watch. Nil is the zero-cost no-op default.
	FleetFeed = agg.Feed
	// FleetSessionStat is one worst-sessions table row: a session's
	// cumulative counts and the SER / burn-rate / ACK-p95 / goodput
	// derived from them.
	FleetSessionStat = agg.SessionStat
)

// NewFleetAggregator returns a streaming aggregator for a fleet of n
// sessions. Register every session with Feed and wire each feed into its
// SessionConfig.Watch — a fleet window only seals once all n sessions
// have reported it (or finished).
func NewFleetAggregator(cfg FleetAggConfig, n int) (*FleetAggregator, error) {
	return agg.New(cfg, n)
}

// ReadFleetAggSnapshot loads an aggregator snapshot written as canonical
// JSON (FleetAggSnapshot.JSON), e.g. the smartvlc-sim -agg-out artifact
// or its /fleet endpoint.
func ReadFleetAggSnapshot(r io.Reader) (*FleetAggSnapshot, error) {
	return agg.ReadSnapshot(r)
}
