// Package smartvlc is a full reimplementation of "SmartVLC: When Smart
// Lighting Meets VLC" (Wu, Wang, Xiong, Zuniga — CoNEXT 2017): a visible
// light communication system that maximizes throughput at every dimming
// level while the luminaire keeps the room's total illumination constant
// and flicker-free.
//
// The paper's hardware prototype (BeagleBone Black PRUs, MOSFET-driven
// Philips LED, photodiode receiver) is replaced by a calibrated slot-level
// simulation; see DESIGN.md for the substitution map. Everything above the
// photons is real: the AMPPM planner and codec, the baselines (OOK-CT,
// MPPM, VPPM), the frame format, the sample-domain receiver, the ARQ MAC
// with its Wi-Fi side channel, and the smart-lighting controller.
//
// # Quick start
//
//	sys, err := smartvlc.New(smartvlc.DefaultConstraints())
//	if err != nil { ... }
//	slots, err := sys.BuildFrame(0.37, []byte("hello"))   // dimming level 0.37
//	payload, err := sys.ParseFrame(slots)
//
// For end-to-end links over the simulated channel (noise, distance,
// ambient light, adaptation), use RunSession. For the paper's evaluation
// figures, see cmd/smartvlc-figures and internal/experiments.
package smartvlc

import (
	"math/rand/v2"
	"strconv"
	"sync"

	"smartvlc/internal/amppm"
	"smartvlc/internal/frame"
	"smartvlc/internal/light"
	"smartvlc/internal/mppm"
	"smartvlc/internal/optics"
	"smartvlc/internal/photon"
	"smartvlc/internal/phy"
	"smartvlc/internal/scheme"
	"smartvlc/internal/sim"
	"smartvlc/internal/stats"
	"smartvlc/internal/telemetry/span"
)

// Core planning types, re-exported from the implementation packages.
type (
	// Constraints are the link parameters that bound AMPPM's pattern
	// search: slot time, flicker threshold, slot error probabilities and
	// the SER bound.
	Constraints = amppm.Constraints
	// SuperSymbol is a multiplexed composition of two MPPM symbol
	// patterns (paper Fig. 7).
	SuperSymbol = amppm.SuperSymbol
	// Pattern is an MPPM symbol pattern S(N, l).
	Pattern = mppm.Pattern
	// Vertex is one point of the throughput envelope.
	Vertex = amppm.Vertex
	// Geometry is the transmitter→receiver pose.
	Geometry = optics.Geometry
	// Scheme is a dimmable modulation scheme (AMPPM or a baseline).
	Scheme = scheme.Scheme
	// SessionConfig configures an end-to-end simulated link session.
	SessionConfig = sim.Config
	// SessionResult carries a session's throughput and light series.
	SessionResult = sim.Result
	// BroadcastConfig configures a one-luminaire, many-receiver session.
	BroadcastConfig = sim.BroadcastConfig
	// ReceiverPose places one receiver of a broadcast session.
	ReceiverPose = sim.ReceiverPose
	// BroadcastResult carries a broadcast session's outcome.
	BroadcastResult = sim.BroadcastResult
	// FleetResult carries a multi-session fleet's per-session results and
	// merged telemetry.
	FleetResult = sim.FleetResult
	// Series is a named time series in session results.
	Series = stats.Series
	// Stepper plans flicker-free dimming transitions.
	Stepper = light.Stepper
	// Trace is a deterministic ambient-light time series.
	Trace = light.Trace
)

// DefaultConstraints returns the paper's prototype parameters: tslot =
// 8 µs (f_tx = 125 kHz), f_th = 250 Hz (Nmax = 500 slots), P1 = 9e-5,
// P2 = 8e-5.
func DefaultConstraints() Constraints { return amppm.DefaultConstraints() }

// S builds the pattern S(N, l) with K = round(l·N) ON slots.
func S(n int, level float64) Pattern { return mppm.S(n, level) }

// Aligned returns an on-axis geometry at distance d with both link angles
// equal to angleDeg.
func Aligned(distanceM, angleDeg float64) Geometry { return optics.Aligned(distanceM, angleDeg) }

// Scheme constructors for the paper's evaluation set.
var (
	// NewOOKCT returns the compensation-based baseline.
	NewOOKCT = func() Scheme { return scheme.NewOOKCT() }
	// NewVPPM returns the IEEE 802.15.7 VPPM baseline.
	NewVPPM = func() Scheme { return scheme.NewVPPM() }
)

// NewMPPM returns the compensation-free fixed-N baseline (the paper
// evaluates N = 20).
func NewMPPM(n int) (Scheme, error) { return scheme.NewMPPM(n) }

// NewOPPM returns the overlapping-PPM baseline from the paper's related
// work (reference [8]).
func NewOPPM(n int) (Scheme, error) { return scheme.NewOPPM(n) }

// NewAMPPMScheme returns AMPPM as a Scheme for use in SessionConfig.
func NewAMPPMScheme(cons Constraints) (Scheme, error) { return scheme.NewAMPPM(cons) }

// System is the high-level AMPPM transceiver facade: it owns the planning
// table derived from the link constraints and builds/parses frames at any
// supported dimming level. A System is safe for concurrent use.
type System struct {
	sch *scheme.AMPPM
	// factory is sch.Factory() captured once: building the closure per
	// Deliver call would put one allocation on the steady-state path.
	factory frame.CodecFactory

	// scratch pools the per-Deliver working set (rng + receiver) so the
	// steady state of DeliverInto allocates nothing.
	scratch sync.Pool

	// Telemetry instruments for the one-shot Deliver path; nil (the
	// default) is a no-op. Set via SetTelemetry (telemetry.go).
	reg *Telemetry
	txm *phy.TxMetrics
	rxm *phy.RxMetrics
	// spans collects causal spans for the one-shot Deliver path; nil (the
	// default) is a no-op. Set via SetSpans (telemetry.go).
	spans *SpanCollector
}

// deliverScratch is one pooled Deliver working set: a reseedable PCG rng
// and a pooled PHY receiver with its batch columns.
type deliverScratch struct {
	pcg *rand.PCG
	rng *rand.Rand
	rx  *phy.Receiver
	// spanBuf is the per-call span staging buffer; it lives here (not on
	// the stack) because taking its address in DeliverInto would force a
	// heap allocation even on the spans-off path.
	spanBuf span.Buffer
}

// New derives the AMPPM planning table from the constraints (paper §4.2
// steps 1–3) and returns the system facade.
func New(cons Constraints) (*System, error) {
	sch, err := scheme.NewAMPPM(cons)
	if err != nil {
		return nil, err
	}
	return &System{sch: sch, factory: sch.Factory()}, nil
}

// Scheme returns the system as a Scheme for session configs.
func (s *System) Scheme() Scheme { return s.sch }

// PlanFor returns the throughput-optimal super-symbol for a target
// dimming level (paper §4.2 step 4).
func (s *System) PlanFor(level float64) (SuperSymbol, error) {
	return s.sch.Table().Select(level)
}

// LevelRange returns the supported dimming levels.
func (s *System) LevelRange() (lo, hi float64) { return s.sch.Table().LevelRange() }

// EnvelopeRateAt returns the normalized data rate (bits/slot) AMPPM
// achieves at a dimming level.
func (s *System) EnvelopeRateAt(level float64) float64 {
	return s.sch.Table().EnvelopeRateAt(level)
}

// Vertices returns the envelope vertices (do not modify).
func (s *System) Vertices() []Vertex { return s.sch.Table().Vertices() }

// DimmingResolution reports the worst-case dimming error over a sweep of
// n levels across the supported range.
func (s *System) DimmingResolution(n int) float64 { return s.sch.Table().Resolution(n) }

// Throughput returns the ideal PHY data rate (bit/s) at a dimming level:
// envelope rate × slot rate, before framing overhead and channel loss.
func (s *System) Throughput(level float64) float64 {
	return s.EnvelopeRateAt(level) * s.sch.Table().Constraints().TxHz()
}

// BuildFrame assembles one frame (paper Table 1: preamble, Manchester
// header, compensation, sync, AMPPM payload, CRC-16) as a slot waveform
// at the given dimming level.
func (s *System) BuildFrame(level float64, payload []byte) ([]bool, error) {
	codec, err := s.sch.CodecFor(level)
	if err != nil {
		return nil, err
	}
	return frame.Build(codec, payload)
}

// FrameSlots returns the total slot count of a frame carrying nbytes at
// the given level — the quantity throughput accounting needs.
func (s *System) FrameSlots(level float64, nbytes int) (int, error) {
	codec, err := s.sch.CodecFor(level)
	if err != nil {
		return 0, err
	}
	return frame.Slots(codec, nbytes), nil
}

// ParseFrame decodes a frame that starts at slots[0] and returns its
// payload. The dimming level and super-symbol pattern are recovered from
// the frame header, as in the paper's receiver.
func (s *System) ParseFrame(slots []bool) ([]byte, error) {
	res, err := frame.Parse(slots, s.factory)
	if err != nil {
		return nil, err
	}
	return res.Payload, nil
}

// DefaultSessionConfig returns the paper's evaluation settings (3 m
// on-axis link, 128-byte payloads, office ambient) for a scheme.
func DefaultSessionConfig(s Scheme) SessionConfig { return sim.DefaultConfig(s) }

// RunSession simulates an end-to-end link session — transmitter, optical
// channel, receiver, ARQ over the Wi-Fi side channel, and (when a Trace
// is configured) smart-lighting adaptation — for the given air time.
func RunSession(cfg SessionConfig, durationSeconds float64) (SessionResult, error) {
	return sim.Run(cfg, durationSeconds)
}

// RunBroadcast simulates a one-luminaire, many-receiver session with
// reliable multicast ARQ; the dimming controller follows the darkest desk
// so every receiver reaches the target illumination. Set cfg.Workers to
// spread the per-receiver PHY work of each frame window across
// goroutines; the result is byte-identical for every worker count.
func RunBroadcast(cfg BroadcastConfig, durationSeconds float64) (BroadcastResult, error) {
	return sim.RunBroadcast(cfg, durationSeconds)
}

// RunFleet runs one independent session per config across at most
// workers goroutines (workers < 1 selects GOMAXPROCS) and returns the
// results in config order together with a merged telemetry snapshot.
// Every per-session result — and the merged snapshot — is byte-identical
// for every worker count; see sim.RunFleet for the determinism contract.
func RunFleet(cfgs []SessionConfig, durationSeconds float64, workers int) (FleetResult, error) {
	return sim.RunFleet(cfgs, durationSeconds, workers)
}

// Arena is a reusable session arena: it owns everything a session
// allocates (PHY link/receiver state, MAC bookkeeping, codec caches,
// scratch buffers), so repeated sessions rent warm state instead of
// reallocating it. Arena.Run and Arena.RunBroadcast are byte-identical
// to RunSession and RunBroadcast — results, telemetry, spans, health and
// prof snapshots alike; only the allocation cost changes. An arena
// serves one session at a time and is not safe for concurrent use.
type Arena = sim.Arena

// NewArena returns an empty session arena; it warms up as it serves
// sessions.
func NewArena() *Arena { return sim.NewArena() }

// FleetArenas is a concurrency-safe pool of session arenas for
// RunFleetArenas: keep one pool alive across repeated fleets and the
// steady-state per-session allocation approaches zero.
type FleetArenas = sim.FleetArenas

// NewFleetArenas returns an empty arena pool.
func NewFleetArenas() *FleetArenas { return sim.NewFleetArenas() }

// RunFleetArenas is RunFleet renting one warm session arena per worker
// from the pool. Results are byte-identical to RunFleet; a persistent
// pool amortizes session setup across calls.
func RunFleetArenas(arenas *FleetArenas, cfgs []SessionConfig, durationSeconds float64, workers int) (FleetResult, error) {
	return sim.RunFleetArenas(arenas, cfgs, durationSeconds, workers)
}

// Steppers for SessionConfig (paper Fig. 19c comparison).
var (
	// PerceivedStepper is SmartVLC's adaptation: fixed steps in the
	// perceived domain.
	PerceivedStepper Stepper = light.PerceivedStepper{TauP: light.DefaultTauP}
	// MeasuredStepper is the baseline: the largest fixed measured-domain
	// step that is safe across the paper's operating range.
	MeasuredStepper Stepper = light.SafeMeasuredStepper(light.DefaultTauP, 0.1)
)

// BlindPull returns the paper's dynamic ambient trace: the motorized
// window blind opening at constant speed over the given duration.
func BlindPull(startLux, endLux, durationSeconds float64) Trace {
	return light.BlindPull{StartLux: startLux, EndLux: endLux, Duration: durationSeconds, WobbleFraction: 0.05}
}

// StaticAmbient returns a constant ambient trace.
func StaticAmbient(lux float64) Trace { return light.Static{Lux: lux} }

// CloudyAmbient returns a sunny baseline with deterministic passing
// clouds (the paper's motivating fast-changing Dutch sky).
func CloudyAmbient(baseLux, dipFraction, periodSeconds float64) Trace {
	return light.Clouds{BaseLux: baseLux, DipFraction: dipFraction, PeriodSeconds: periodSeconds}
}

// DayCycleAmbient returns a dawn-to-dusk trace with optional clouds; pass
// a zero cloud period for a clear day.
func DayCycleAmbient(peakLux, dayLengthSeconds, cloudDip, cloudPeriod float64) Trace {
	d := light.DayCycle{PeakLux: peakLux, DayLengthSeconds: dayLengthSeconds}
	if cloudPeriod > 0 {
		d.Clouds = &light.Clouds{BaseLux: peakLux, DipFraction: cloudDip, PeriodSeconds: cloudPeriod}
	}
	return d
}

// Deliver transmits a slot waveform over the simulated optical channel at
// the given geometry and ambient level, runs the sample-domain receiver
// over it, and returns the payloads of every frame that decoded cleanly.
// It is the one-shot physical path for applications that frame their own
// data with BuildFrame; RunSession adds MAC, ARQ and adaptation on top.
func (s *System) Deliver(g Geometry, ambientLux float64, seed uint64, slots []bool) ([][]byte, error) {
	rep, err := s.DeliverStats(g, ambientLux, seed, slots)
	if err != nil {
		return nil, err
	}
	return rep.Payloads, nil
}

// DeliverStats is Deliver with the receiver statistics kept: frame
// outcomes, symbol errors, the per-error tally and the detection
// threshold. When a registry is attached (SetTelemetry) the transmit and
// receive paths record into it as well.
func (s *System) DeliverStats(g Geometry, ambientLux float64, seed uint64, slots []bool) (DeliverReport, error) {
	var rep DeliverReport
	if err := s.DeliverInto(&rep, g, ambientLux, seed, slots); err != nil {
		return DeliverReport{}, err
	}
	return rep, nil
}

// DeliverInto is DeliverStats writing into a caller-provided report,
// reusing rep's payload spine and backing buffers across calls — the
// zero-alloc steady state of the one-shot physical path. Payloads are
// copied out of the receiver, so they stay valid for as long as the
// caller keeps the report (until the next DeliverInto on the same rep,
// which recycles them).
func (s *System) DeliverInto(rep *DeliverReport, g Geometry, ambientLux float64, seed uint64, slots []bool) error {
	ch, err := photon.DefaultLinkBudget().ChannelAt(g, ambientLux)
	if err != nil {
		return err
	}
	link := phy.DefaultLink(ch)
	link.Metrics = s.txm
	sc, _ := s.scratch.Get().(*deliverScratch)
	if sc == nil {
		pcg := rand.NewPCG(seed, deliverStreamKey)
		sc = &deliverScratch{pcg: pcg, rng: rand.New(pcg), rx: &phy.Receiver{}}
	} else {
		sc.pcg.Seed(seed, deliverStreamKey)
	}
	link.StartPhase = sc.rng.Float64()
	samples := link.TransmitPCG(sc.pcg, slots)
	rx := sc.rx
	rx.Reset(ch, s.factory)
	rx.Metrics = s.rxm
	s.rxm.OnChannel(rx.Threshold())
	// One-shot span tree: the Deliver call has no session clock, so the
	// root starts at 0 and receiver spans are timed by sample index.
	tsamp := tslotSeconds / float64(phy.Oversample)
	if s.spans != nil {
		sc.spanBuf.Reset()
		rx.SetSpanWindow(&sc.spanBuf, 0, tsamp)
	}
	results, st := rx.Process(samples)
	if s.spans != nil {
		root := s.spans.Record(span.Span{
			Name: "deliver", Seq: -1, Start: 0, End: float64(len(samples)) * tsamp,
			Attrs: []span.Attr{{Key: "threshold", Value: strconv.Itoa(rx.Threshold())}},
		})
		s.spans.Splice(&sc.spanBuf, root, -1)
	}
	phy.RecycleSamples(samples)
	rep.FramesOK = st.FramesOK
	rep.FramesBad = st.FramesBad
	rep.SymbolErrors = st.SymbolErrors
	rep.Errors = st.Errors
	rep.Threshold = rx.Threshold()
	// Copy the payloads out of the receiver's batch into the report's own
	// buffers, reviving both the spine and the per-frame backing arrays
	// of the previous call.
	spine := rep.Payloads[:0]
	for _, r := range results {
		var dst []byte
		if n := len(spine); n < cap(spine) {
			dst = spine[:n+1][n][:0]
		}
		spine = append(spine, append(dst, r.Payload...))
	}
	rep.Payloads = spine
	s.scratch.Put(sc)
	return nil
}

// deliverStreamKey is the fixed second PCG seed word of the Deliver rng
// stream; it only has to differ from other streams' keys.
const deliverStreamKey = 0xDE11FE6

// LinkQuality reports the slot error probabilities P1/P2 at a geometry
// and ambient level under the calibrated link budget, through the
// receiver's detection window — the quantities the paper measures to
// parameterize Eq. 3.
func LinkQuality(g Geometry, ambientLux float64) (p1, p2 float64, err error) {
	ch, err := photon.DefaultLinkBudget().ChannelAt(g, ambientLux)
	if err != nil {
		return 0, 0, err
	}
	w := ch.Scaled(0.75)
	p1, p2 = w.ErrorProbs(w.OptimalThreshold())
	return p1, p2, nil
}

// Version identifies the library release.
const Version = "1.0.0"
