// Command phybench runs the PHY fast-path micro-benchmarks in-process and
// writes results/BENCH_phy.json, the machine-readable record of the
// sample-domain optimization (see DESIGN.md and EXPERIMENTS.md). Each
// entry carries the pre-optimization baseline measured on the same
// benchmark body before the fast paths landed, so the speedup trajectory
// survives in the repo.
//
// Usage:
//
//	go run ./cmd/phybench [-benchtime 2s] [-out results/BENCH_phy.json] [-quick]
//	    [-history results/BENCH_history.jsonl] [-sha COMMIT] [-stamp RFC3339]
//
// -quick is the smoke mode for CI and pre-commit runs: a short benchtime,
// no baseline comparison (short runs are too noisy to call speedups), and
// a default output path that does not clobber the recorded
// results/BENCH_phy.json.
//
// Besides the point-in-time report, every run appends one JSON line to the
// bench history log (-history; empty disables): the commit identity (-sha,
// -stamp — flags, not clock reads, so replays stay reproducible) plus
// every benchmark's ns/op. The history feeds the trend gates: benchguard
// -trend and vlcprof trend compare the newest run against a rolling median
// of prior runs and name the regressing stage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"smartvlc"
	"smartvlc/internal/amppm"
	"smartvlc/internal/bench"
	"smartvlc/internal/experiments"
	"smartvlc/internal/frame"
	"smartvlc/internal/optics"
	"smartvlc/internal/photon"
	"smartvlc/internal/phy"
	"smartvlc/internal/scheme"
)

// baselinesNs holds the pre-fast-path numbers measured on the same
// benchmark bodies (Intel Xeon @ 2.10GHz, go1.24): the denominators of
// the recorded speedups. Zero means the benchmark has no meaningful
// "before" (table construction itself was not changed, only memoized).
var baselinesNs = map[string]float64{
	"phy_transmit":       1859565,
	"receiver_process":   374470,
	"receiver_hunt":      270909,
	"end_to_end_frame":   598991,
	"table_construction": 0,
}

// serialPeer maps each parallel benchmark to its single-worker twin; the
// recorded ParallelSpeedup is serial ns/op over parallel ns/op on this
// machine (so it only exceeds 1 on multi-core hosts — see NumCPU in the
// report header).
var serialPeer = map[string]string{
	"fleet_sessions_parallel":       "fleet_sessions",
	"fleet_sessions_arena_parallel": "fleet_sessions_arena",
	"fig4_montecarlo_parallel":      "fig4_montecarlo",
	"broadcast_fanout_parallel":     "broadcast_fanout",
}

// nilPeer maps each instrumented benchmark to its observability-off twin;
// the recorded OverheadVsNil is the fractional cost of turning the layer
// on, backing the "a few % at most" claim the benchguard gate enforces.
var nilPeer = map[string]string{
	"end_to_end_frame_spans":   "end_to_end_frame",
	"end_to_end_frame_health":  "session_frames",
	"end_to_end_frame_prof":    "session_frames",
	"end_to_end_frame_vlog":    "session_frames",
	"fleet_sessions_telemetry": "fleet_sessions",
	"fleet_sessions_agg":       "fleet_sessions_telemetry",
}

// arenaPeer maps each warm-arena benchmark to its fresh-allocation twin;
// the recorded ArenaSpeedup is fresh ns/op over warm ns/op. The twins run
// the exact same session workload — the arena contract guarantees
// byte-identical results — so the ratio isolates what session setup
// allocation actually costs (and shows honestly how compute-bound the
// sessions are: most of a session is physics, not allocation).
var arenaPeer = map[string]string{
	"session_frames_arena":          "session_frames",
	"fleet_sessions_arena":          "fleet_sessions",
	"fleet_sessions_arena_parallel": "fleet_sessions_parallel",
}

type entry struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BaselineNsOp  float64 `json:"baseline_ns_per_op,omitempty"`
	SpeedupVsSeed float64 `json:"speedup_vs_baseline,omitempty"`
	// Workers is the worker count the benchmark body ran with (0 when the
	// body has no parallel dimension).
	Workers int `json:"workers,omitempty"`
	// ParallelSpeedup is serial-twin ns/op ÷ this entry's ns/op, recorded
	// on the *_parallel entries.
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
	// OverheadVsNil is this entry's ns/op over its observability-off
	// twin's, minus one — the fractional price of the instrumented layer.
	OverheadVsNil float64 `json:"overhead_vs_nil,omitempty"`
	// FramesPerSecPerCore normalizes frame throughput by the cores the
	// body used (frames per op × 1e9 / ns/op / workers) — the number that
	// stays comparable between serial and parallel twins and that
	// benchguard gates on.
	FramesPerSecPerCore float64 `json:"frames_per_sec_per_core,omitempty"`
	// SessionsPerSec is whole simulated ARQ sessions per wall-clock second
	// (sessions per op × 1e9 / ns/op), recorded on the session-loop twins.
	SessionsPerSec float64 `json:"sessions_per_sec,omitempty"`
	// SessionsPerSecPerCore normalizes SessionsPerSec by the cores the body
	// used — the per-core session throughput benchguard trends across
	// commits, comparable between serial and parallel twins.
	SessionsPerSecPerCore float64 `json:"sessions_per_sec_per_core,omitempty"`
	// ArenaSpeedup is the fresh-allocation twin's ns/op over this entry's,
	// recorded on the *_arena entries (see arenaPeer).
	ArenaSpeedup float64 `json:"arena_speedup,omitempty"`
	Iterations   int     `json:"iterations"`
}

// curvePoint is one (workers, ns/op) measurement of a parallel twin.
type curvePoint struct {
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
	// Speedup is the workers=1 twin's ns/op over this point's.
	Speedup float64 `json:"speedup_vs_serial"`
}

// speedupCurve is the scaling record of one parallel workload: ns/op and
// speedup at each worker count. On a single-core host the curve still
// gets recorded (speedups hover at or below 1) — num_cpu in the report
// header tells the reader, and benchguard, how to interpret it.
type speedupCurve struct {
	Name   string       `json:"name"`
	Points []curvePoint `json:"points"`
}

type report struct {
	GeneratedBy string `json:"generated_by"`
	Date        string `json:"date"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	Benchtime   string `json:"benchtime"`
	// Quick marks a smoke run: short benchtime, no baseline comparison.
	// Quick reports are for liveness, not for updating recorded numbers.
	Quick         bool           `json:"quick,omitempty"`
	Benchmarks    []entry        `json:"benchmarks"`
	SpeedupCurves []speedupCurve `json:"speedup_curves,omitempty"`
}

// curveWorkers are the worker counts of the recorded speedup curves.
var curveWorkers = []int{1, 2, 4, 8}

func buildSlots(level float64, nFrames, idleGap int) ([]bool, *scheme.AMPPM, error) {
	sch, err := scheme.NewAMPPM(amppm.DefaultConstraints())
	if err != nil {
		return nil, nil, err
	}
	codec, err := sch.CodecFor(level)
	if err != nil {
		return nil, nil, err
	}
	payload := make([]byte, 128)
	for i := range payload {
		payload[i] = byte(i * 37)
	}
	slots := frame.AppendIdle(nil, codec.Level(), idleGap)
	for f := 0; f < nFrames; f++ {
		fs, err := frame.Build(codec, payload)
		if err != nil {
			return nil, nil, err
		}
		slots = append(slots, fs...)
		slots = frame.AppendIdle(slots, codec.Level(), idleGap)
	}
	return slots, sch, nil
}

func main() {
	benchtime := flag.Duration("benchtime", 2*time.Second, "minimum time per benchmark")
	out := flag.String("out", filepath.Join("results", "BENCH_phy.json"), "output path")
	quick := flag.Bool("quick", false, "smoke mode: short benchtime, no baseline comparison, separate default output")
	history := flag.String("history", filepath.Join("results", "BENCH_history.jsonl"), "bench history log to append this run to (empty disables)")
	sha := flag.String("sha", "", "git commit recorded in the history line")
	stamp := flag.String("stamp", "", "run timestamp recorded in the history line (RFC 3339 by convention)")
	flag.Parse()
	if *quick {
		// Explicit -benchtime/-out still win over the quick defaults.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["benchtime"] {
			*benchtime = 200 * time.Millisecond
		}
		if !explicit["out"] {
			*out = filepath.Join("results", "BENCH_phy_quick.json")
		}
	}

	ch, err := photon.DefaultLinkBudget().ChannelAt(optics.Aligned(3.0, 0), 8000)
	if err != nil {
		fatal(err)
	}
	link := phy.DefaultLink(ch)

	txSlots, sch, err := buildSlots(0.5, 4, 24)
	if err != nil {
		fatal(err)
	}
	rxSlots, _, err := buildSlots(0.5, 4, 600)
	if err != nil {
		fatal(err)
	}

	sys, err := smartvlc.New(smartvlc.DefaultConstraints())
	if err != nil {
		fatal(err)
	}
	e2eSlots, err := sys.BuildFrame(0.5, make([]byte, 128))
	if err != nil {
		fatal(err)
	}

	// Spans-enabled twin of end_to_end_frame on its own System, so the
	// nil-collector default path above stays untouched. The collector is a
	// bounded ring, so steady-state iterations recycle its slots.
	sysSpans, err := smartvlc.New(smartvlc.DefaultConstraints())
	if err != nil {
		fatal(err)
	}
	sysSpans.SetSpans(smartvlc.NewSpanCollector())

	// Parallel-engine benchmark bodies, each in a serial and a
	// many-worker variant over the same workload. fleetCfgs builds fresh
	// configs per run because registries are stateful.
	fleetCfgs := func() []smartvlc.SessionConfig {
		cfgs := make([]smartvlc.SessionConfig, 8)
		for j := range cfgs {
			cfg := smartvlc.DefaultSessionConfig(sys.Scheme())
			cfg.FixedLevel = 0.5
			cfg.Seed = uint64(j + 1)
			cfgs[j] = cfg
		}
		return cfgs
	}
	fleetBody := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fl, err := smartvlc.RunFleet(fleetCfgs(), 0.1, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(fl.Results) != 8 {
					b.Fatalf("fleet returned %d sessions", len(fl.Results))
				}
			}
		}
	}
	// Warm-arena twin: one persistent pool serves every iteration, so each
	// op after the first rents warm per-worker arenas and session setup
	// stops allocating. Byte-identical results to fleetBody by the arena
	// contract — only where state lives differs.
	fleetArenaBody := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			arenas := smartvlc.NewFleetArenas()
			for i := 0; i < b.N; i++ {
				fl, err := smartvlc.RunFleetArenas(arenas, fleetCfgs(), 0.1, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(fl.Results) != 8 {
					b.Fatalf("fleet returned %d sessions", len(fl.Results))
				}
			}
		}
	}
	// Telemetry-armed twin of fleet_sessions: every session carries a
	// registry but no watch feed, splitting the instrumented cost in two —
	// this entry prices the metrics layer against the bare fleet, and
	// fleet_sessions_agg below prices the streaming aggregation (delta
	// extraction + window folds) against this one.
	fleetTelemetryCfgs := func() []smartvlc.SessionConfig {
		cfgs := fleetCfgs()
		for j := range cfgs {
			cfgs[j].Telemetry = smartvlc.NewTelemetry()
		}
		return cfgs
	}
	fleetTelemetryBody := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fl, err := smartvlc.RunFleet(fleetTelemetryCfgs(), 0.1, 1)
			if err != nil {
				b.Fatal(err)
			}
			if len(fl.Results) != 8 {
				b.Fatalf("fleet returned %d sessions", len(fl.Results))
			}
		}
	}
	fleetAggBody := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfgs := fleetTelemetryCfgs()
			fa, err := smartvlc.NewFleetAggregator(smartvlc.FleetAggConfig{WindowSeconds: 0.02}, len(cfgs))
			if err != nil {
				b.Fatal(err)
			}
			for j := range cfgs {
				feed, err := fa.Feed(smartvlc.FleetSessionMeta{
					Index: j, Seed: cfgs[j].Seed,
					Scheme: sys.Scheme().Name(), PayloadBytes: cfgs[j].PayloadBytes,
				})
				if err != nil {
					b.Fatal(err)
				}
				cfgs[j].Watch = feed
			}
			fl, err := smartvlc.RunFleet(cfgs, 0.1, 1)
			if err != nil {
				b.Fatal(err)
			}
			if len(fl.Results) != 8 {
				b.Fatalf("fleet returned %d sessions", len(fl.Results))
			}
			if fl.Agg == nil || fl.Agg.SealedWindows == 0 {
				b.Fatal("fleet aggregation sealed no windows")
			}
		}
	}
	mcBody := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, _, err := experiments.Fig4MonteCarloWorkers(40000, 11, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) == 0 {
					b.Fatal("empty Monte-Carlo result")
				}
			}
		}
	}
	bcastBody := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := smartvlc.BroadcastConfig{Workers: workers}
				cfg.Config = smartvlc.DefaultSessionConfig(sys.Scheme())
				cfg.FixedLevel = 0.5
				base := cfg.Geometry
				cfg.Receivers = []smartvlc.ReceiverPose{
					{Geometry: base},
					{Geometry: base, AmbientScale: 1.4},
					{Geometry: base, AmbientScale: 0.7},
					{Geometry: base, AmbientScale: 1.1},
				}
				res, err := smartvlc.RunBroadcast(cfg, 0.1)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.PerReceiver) != 4 {
					b.Fatalf("broadcast returned %d receivers", len(res.PerReceiver))
				}
			}
		}
	}
	// Session-loop twins: one simulated 0.1 s ARQ session per op, with the
	// link-health monitor, the stage profiler and the structured logger off
	// and then each armed in turn, so the recorded pairs price the
	// observability hot paths (OverheadVsNil on the health, prof and vlog
	// entries).
	sessionBody := func(withHealth, withProf, withLog bool) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := smartvlc.DefaultSessionConfig(sys.Scheme())
				cfg.FixedLevel = 0.5
				cfg.Seed = uint64(i + 1)
				if withHealth {
					cfg.Health = &smartvlc.HealthConfig{Objectives: smartvlc.DefaultHealthObjectives()}
				}
				if withProf {
					cfg.Prof = smartvlc.NewProfiler()
				}
				if withLog {
					cfg.Logs = smartvlc.NewLogger(smartvlc.LogDebug)
				}
				res, err := smartvlc.RunSession(cfg, 0.1)
				if err != nil {
					b.Fatal(err)
				}
				if res.FramesOK == 0 {
					b.Fatal("no frames delivered")
				}
				if withHealth && res.Health == nil {
					b.Fatal("missing health snapshot")
				}
				if withProf && res.Prof == nil {
					b.Fatal("missing profile snapshot")
				}
				if withLog && res.Logs == nil {
					b.Fatal("missing log snapshot")
				}
			}
		}
	}
	// Warm-arena twin of session_frames: one arena serves every iteration,
	// so ops after the first reuse the rented link/receiver/codec/MAC state.
	arenaSessionBody := func(b *testing.B) {
		a := smartvlc.NewArena()
		for i := 0; i < b.N; i++ {
			cfg := smartvlc.DefaultSessionConfig(sys.Scheme())
			cfg.FixedLevel = 0.5
			cfg.Seed = uint64(i + 1)
			res, err := a.Run(cfg, 0.1)
			if err != nil {
				b.Fatal(err)
			}
			if res.FramesOK == 0 {
				b.Fatal("no frames delivered")
			}
		}
	}
	ncpu := runtime.NumCPU()

	benches := []struct {
		name    string
		workers int
		// frames/sessions are the per-op counts behind the throughput
		// fields (zero when the body has no such unit of work).
		frames   float64
		sessions float64
		body     func(b *testing.B)
	}{
		{name: "phy_transmit", body: func(b *testing.B) {
			rng := rand.New(rand.NewPCG(1, 2))
			l := link
			for i := 0; i < b.N; i++ {
				l.StartPhase = rng.Float64()
				samples := l.Transmit(rng, txSlots)
				phy.RecycleSamples(samples)
			}
		}},
		{name: "phy_transmit_pcg", body: func(b *testing.B) {
			// The production hot path: sessions own a concrete PCG and take
			// TransmitPCG, whose uniforms inline. No recorded baseline — the
			// entry point postdates the baseline capture; compare against
			// phy_transmit in the same report instead.
			pcg := rand.NewPCG(1, 2)
			rng := rand.New(pcg)
			l := link
			for i := 0; i < b.N; i++ {
				l.StartPhase = rng.Float64()
				samples := l.TransmitPCG(pcg, txSlots)
				phy.RecycleSamples(samples)
			}
		}},
		{name: "receiver_process", frames: 4, body: func(b *testing.B) {
			rng := rand.New(rand.NewPCG(3, 4))
			l := link
			l.StartPhase = rng.Float64()
			samples := l.Transmit(rng, rxSlots)
			rx := phy.NewReceiver(ch, sch.Factory())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, stats := rx.Process(samples)
				if len(results) != 4 || stats.FramesOK != 4 {
					b.Fatalf("decoded %d frames (stats %v)", len(results), stats)
				}
			}
		}},
		{name: "receiver_hunt", body: func(b *testing.B) {
			rng := rand.New(rand.NewPCG(5, 6))
			samples := link.Transmit(rng, make([]bool, 20000))
			rx := phy.NewReceiver(ch, sch.Factory())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if results, _ := rx.Process(samples); len(results) != 0 {
					b.Fatal("found frames in noise")
				}
			}
		}},
		{name: "table_construction", body: func(b *testing.B) {
			cons := amppm.DefaultConstraints()
			for i := 0; i < b.N; i++ {
				// Perturb a constraint below any physical significance so
				// every iteration misses the NewTable memo and pays the
				// full planning stage.
				c := cons
				c.P1 = cons.P1 * (1 + float64(i+1)*1e-12)
				t, err := amppm.NewTable(c)
				if err != nil {
					b.Fatal(err)
				}
				if len(t.Vertices()) < 3 {
					b.Fatal("degenerate envelope")
				}
			}
		}},
		{name: "end_to_end_frame", frames: 1, body: func(b *testing.B) {
			misses := 0
			var rep smartvlc.DeliverReport
			for i := 0; i < b.N; i++ {
				if err := sys.DeliverInto(&rep, smartvlc.Aligned(3, 0), 8000, uint64(i), e2eSlots); err != nil {
					b.Fatal(err)
				}
				if len(rep.Payloads) != 1 {
					misses++ // rare phase corners lose a frame; ARQ covers them
				}
			}
			if misses > b.N/20+1 {
				b.Fatalf("%d/%d frames lost", misses, b.N)
			}
		}},
		{name: "end_to_end_frame_spans", frames: 1, body: func(b *testing.B) {
			misses := 0
			var rep smartvlc.DeliverReport
			for i := 0; i < b.N; i++ {
				if err := sysSpans.DeliverInto(&rep, smartvlc.Aligned(3, 0), 8000, uint64(i), e2eSlots); err != nil {
					b.Fatal(err)
				}
				if len(rep.Payloads) != 1 {
					misses++ // rare phase corners lose a frame; ARQ covers them
				}
			}
			if misses > b.N/20+1 {
				b.Fatalf("%d/%d frames lost", misses, b.N)
			}
		}},
		{name: "session_frames", sessions: 1, body: sessionBody(false, false, false)},
		{name: "session_frames_arena", sessions: 1, body: arenaSessionBody},
		{name: "end_to_end_frame_health", sessions: 1, body: sessionBody(true, false, false)},
		{name: "end_to_end_frame_prof", sessions: 1, body: sessionBody(false, true, false)},
		{name: "end_to_end_frame_vlog", sessions: 1, body: sessionBody(false, false, true)},
		{name: "fleet_sessions", workers: 1, sessions: 8, body: fleetBody(1)},
		{name: "fleet_sessions_telemetry", workers: 1, sessions: 8, body: fleetTelemetryBody},
		{name: "fleet_sessions_agg", workers: 1, sessions: 8, body: fleetAggBody},
		{name: "fleet_sessions_parallel", workers: ncpu, sessions: 8, body: fleetBody(ncpu)},
		{name: "fleet_sessions_arena", workers: 1, sessions: 8, body: fleetArenaBody(1)},
		{name: "fleet_sessions_arena_parallel", workers: ncpu, sessions: 8, body: fleetArenaBody(ncpu)},
		{name: "fig4_montecarlo", workers: 1, body: mcBody(1)},
		{name: "fig4_montecarlo_parallel", workers: ncpu, body: mcBody(ncpu)},
		{name: "broadcast_fanout", workers: 1, sessions: 1, body: bcastBody(1)},
		{name: "broadcast_fanout_parallel", workers: ncpu, sessions: 1, body: bcastBody(ncpu)},
	}

	rep := report{
		GeneratedBy: "cmd/phybench",
		Date:        time.Now().UTC().Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		NumCPU:      ncpu,
		Benchtime:   benchtime.String(),
		Quick:       *quick,
	}
	nsByName := map[string]float64{}
	sessByName := map[string]float64{}
	for _, bm := range benches {
		r := measure(*benchtime, bm.body)
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		nsByName[bm.name] = nsPerOp
		e := entry{
			Name:        bm.name,
			NsPerOp:     nsPerOp,
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Workers:     bm.workers,
			Iterations:  r.N,
		}
		if base := baselinesNs[bm.name]; base > 0 && !*quick {
			e.BaselineNsOp = base
			e.SpeedupVsSeed = base / nsPerOp
		}
		if peer, ok := serialPeer[bm.name]; ok {
			if serial := nsByName[peer]; serial > 0 {
				e.ParallelSpeedup = serial / nsPerOp
			}
		}
		if peer, ok := nilPeer[bm.name]; ok {
			if nil0 := nsByName[peer]; nil0 > 0 {
				e.OverheadVsNil = nsPerOp/nil0 - 1
			}
		}
		cores := bm.workers
		if cores < 1 {
			cores = 1
		}
		if bm.frames > 0 {
			e.FramesPerSecPerCore = bm.frames * 1e9 / nsPerOp / float64(cores)
		}
		if bm.sessions > 0 {
			e.SessionsPerSec = bm.sessions * 1e9 / nsPerOp
			e.SessionsPerSecPerCore = e.SessionsPerSec / float64(cores)
			sessByName[bm.name] = e.SessionsPerSec
		}
		if peer, ok := arenaPeer[bm.name]; ok {
			if fresh := nsByName[peer]; fresh > 0 {
				e.ArenaSpeedup = fresh / nsPerOp
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		fmt.Printf("%-29s %12.0f ns/op  %8d B/op  %5d allocs/op", bm.name, nsPerOp, e.BytesPerOp, e.AllocsPerOp)
		if e.SpeedupVsSeed > 0 {
			fmt.Printf("  %.2fx vs baseline", e.SpeedupVsSeed)
		}
		if e.ParallelSpeedup > 0 {
			fmt.Printf("  %.2fx vs serial (%d workers)", e.ParallelSpeedup, e.Workers)
		}
		if _, ok := nilPeer[bm.name]; ok {
			fmt.Printf("  %+.1f%% vs nil twin", e.OverheadVsNil*100)
		}
		if e.ArenaSpeedup > 0 {
			fmt.Printf("  %.2fx vs fresh twin", e.ArenaSpeedup)
		}
		fmt.Println()
	}

	// Speedup curves: each parallel twin swept over the worker counts. The
	// workers=1 point reuses the serial twin's measurement, and a point
	// matching the parallel twin's worker count reuses that one, so a
	// curve costs at most two extra measurements per family.
	curveFamilies := []struct {
		name string
		body func(workers int) func(b *testing.B)
	}{
		{"fleet_sessions", fleetBody},
		{"fleet_sessions_arena", fleetArenaBody},
		{"fig4_montecarlo", mcBody},
		{"broadcast_fanout", bcastBody},
	}
	for _, fam := range curveFamilies {
		serial := nsByName[fam.name]
		c := speedupCurve{Name: fam.name}
		for _, w := range curveWorkers {
			var ns float64
			switch w {
			case 1:
				ns = serial
			case ncpu:
				ns = nsByName[fam.name+"_parallel"]
			}
			if ns == 0 {
				r := measure(*benchtime, fam.body(w))
				ns = float64(r.T.Nanoseconds()) / float64(r.N)
			}
			c.Points = append(c.Points, curvePoint{Workers: w, NsPerOp: ns, Speedup: serial / ns})
		}
		rep.SpeedupCurves = append(rep.SpeedupCurves, c)
		fmt.Printf("%-29s curve:", fam.name)
		for _, p := range c.Points {
			fmt.Printf("  %dw %.2fx", p.Workers, p.Speedup)
		}
		fmt.Println()
	}

	if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *history != "" {
		rec := bench.Record{
			SHA:            *sha,
			Stamp:          *stamp,
			GoVersion:      runtime.Version(),
			NumCPU:         ncpu,
			Quick:          *quick,
			NsPerOp:        nsByName,
			SessionsPerSec: sessByName,
		}
		if err := bench.Append(*history, rec); err != nil {
			fatal(err)
		}
		fmt.Printf("appended %s\n", *history)
	}
}

// measure runs the benchmark body under testing.Benchmark (which targets
// ~1 s per run) repeatedly until the requested benchtime is accumulated,
// then merges the runs into one result.
func measure(benchtime time.Duration, body func(b *testing.B)) testing.BenchmarkResult {
	var total testing.BenchmarkResult
	for total.T < benchtime {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			body(b)
		})
		total.N += r.N
		total.T += r.T
		total.MemAllocs += r.MemAllocs
		total.MemBytes += r.MemBytes
	}
	return total
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phybench:", err)
	os.Exit(1)
}
