// Command phybench runs the PHY fast-path micro-benchmarks in-process and
// writes results/BENCH_phy.json, the machine-readable record of the
// sample-domain optimization (see DESIGN.md and EXPERIMENTS.md). Each
// entry carries the pre-optimization baseline measured on the same
// benchmark body before the fast paths landed, so the speedup trajectory
// survives in the repo.
//
// Usage:
//
//	go run ./cmd/phybench [-benchtime 2s] [-out results/BENCH_phy.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"smartvlc"
	"smartvlc/internal/amppm"
	"smartvlc/internal/frame"
	"smartvlc/internal/optics"
	"smartvlc/internal/photon"
	"smartvlc/internal/phy"
	"smartvlc/internal/scheme"
)

// baselinesNs holds the pre-fast-path numbers measured on the same
// benchmark bodies (Intel Xeon @ 2.10GHz, go1.24): the denominators of
// the recorded speedups. Zero means the benchmark has no meaningful
// "before" (table construction itself was not changed, only memoized).
var baselinesNs = map[string]float64{
	"phy_transmit":       1859565,
	"receiver_process":   374470,
	"receiver_hunt":      270909,
	"end_to_end_frame":   598991,
	"table_construction": 0,
}

type entry struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BaselineNsOp  float64 `json:"baseline_ns_per_op,omitempty"`
	SpeedupVsSeed float64 `json:"speedup_vs_baseline,omitempty"`
	Iterations    int     `json:"iterations"`
}

type report struct {
	GeneratedBy string  `json:"generated_by"`
	Date        string  `json:"date"`
	GoVersion   string  `json:"go_version"`
	Benchtime   string  `json:"benchtime"`
	Benchmarks  []entry `json:"benchmarks"`
}

func buildSlots(level float64, nFrames, idleGap int) ([]bool, *scheme.AMPPM, error) {
	sch, err := scheme.NewAMPPM(amppm.DefaultConstraints())
	if err != nil {
		return nil, nil, err
	}
	codec, err := sch.CodecFor(level)
	if err != nil {
		return nil, nil, err
	}
	payload := make([]byte, 128)
	for i := range payload {
		payload[i] = byte(i * 37)
	}
	slots := frame.AppendIdle(nil, codec.Level(), idleGap)
	for f := 0; f < nFrames; f++ {
		fs, err := frame.Build(codec, payload)
		if err != nil {
			return nil, nil, err
		}
		slots = append(slots, fs...)
		slots = frame.AppendIdle(slots, codec.Level(), idleGap)
	}
	return slots, sch, nil
}

func main() {
	benchtime := flag.Duration("benchtime", 2*time.Second, "minimum time per benchmark")
	out := flag.String("out", filepath.Join("results", "BENCH_phy.json"), "output path")
	flag.Parse()

	ch, err := photon.DefaultLinkBudget().ChannelAt(optics.Aligned(3.0, 0), 8000)
	if err != nil {
		fatal(err)
	}
	link := phy.DefaultLink(ch)

	txSlots, sch, err := buildSlots(0.5, 4, 24)
	if err != nil {
		fatal(err)
	}
	rxSlots, _, err := buildSlots(0.5, 4, 600)
	if err != nil {
		fatal(err)
	}

	sys, err := smartvlc.New(smartvlc.DefaultConstraints())
	if err != nil {
		fatal(err)
	}
	e2eSlots, err := sys.BuildFrame(0.5, make([]byte, 128))
	if err != nil {
		fatal(err)
	}

	benches := []struct {
		name string
		body func(b *testing.B)
	}{
		{"phy_transmit", func(b *testing.B) {
			rng := rand.New(rand.NewPCG(1, 2))
			l := link
			for i := 0; i < b.N; i++ {
				l.StartPhase = rng.Float64()
				samples := l.Transmit(rng, txSlots)
				phy.RecycleSamples(samples)
			}
		}},
		{"receiver_process", func(b *testing.B) {
			rng := rand.New(rand.NewPCG(3, 4))
			l := link
			l.StartPhase = rng.Float64()
			samples := l.Transmit(rng, rxSlots)
			rx := phy.NewReceiver(ch, sch.Factory())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, stats := rx.Process(samples)
				if len(results) != 4 || stats.FramesOK != 4 {
					b.Fatalf("decoded %d frames (stats %v)", len(results), stats)
				}
			}
		}},
		{"receiver_hunt", func(b *testing.B) {
			rng := rand.New(rand.NewPCG(5, 6))
			samples := link.Transmit(rng, make([]bool, 20000))
			rx := phy.NewReceiver(ch, sch.Factory())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if results, _ := rx.Process(samples); len(results) != 0 {
					b.Fatal("found frames in noise")
				}
			}
		}},
		{"table_construction", func(b *testing.B) {
			cons := amppm.DefaultConstraints()
			for i := 0; i < b.N; i++ {
				// Perturb a constraint below any physical significance so
				// every iteration misses the NewTable memo and pays the
				// full planning stage.
				c := cons
				c.P1 = cons.P1 * (1 + float64(i+1)*1e-12)
				t, err := amppm.NewTable(c)
				if err != nil {
					b.Fatal(err)
				}
				if len(t.Vertices()) < 3 {
					b.Fatal("degenerate envelope")
				}
			}
		}},
		{"end_to_end_frame", func(b *testing.B) {
			misses := 0
			for i := 0; i < b.N; i++ {
				got, err := sys.Deliver(smartvlc.Aligned(3, 0), 8000, uint64(i), e2eSlots)
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != 1 {
					misses++ // rare phase corners lose a frame; ARQ covers them
				}
			}
			if misses > b.N/20+1 {
				b.Fatalf("%d/%d frames lost", misses, b.N)
			}
		}},
	}

	rep := report{
		GeneratedBy: "cmd/phybench",
		Date:        time.Now().UTC().Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		Benchtime:   benchtime.String(),
	}
	for _, bm := range benches {
		r := measure(*benchtime, bm.body)
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		e := entry{
			Name:        bm.name,
			NsPerOp:     nsPerOp,
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
		if base := baselinesNs[bm.name]; base > 0 {
			e.BaselineNsOp = base
			e.SpeedupVsSeed = base / nsPerOp
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		fmt.Printf("%-20s %12.0f ns/op  %8d B/op  %5d allocs/op", bm.name, nsPerOp, e.BytesPerOp, e.AllocsPerOp)
		if e.SpeedupVsSeed > 0 {
			fmt.Printf("  %.2fx vs baseline", e.SpeedupVsSeed)
		}
		fmt.Println()
	}

	if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// measure runs the benchmark body under testing.Benchmark (which targets
// ~1 s per run) repeatedly until the requested benchtime is accumulated,
// then merges the runs into one result.
func measure(benchtime time.Duration, body func(b *testing.B)) testing.BenchmarkResult {
	var total testing.BenchmarkResult
	for total.T < benchtime {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			body(b)
		})
		total.N += r.N
		total.T += r.T
		total.MemAllocs += r.MemAllocs
		total.MemBytes += r.MemBytes
	}
	return total
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phybench:", err)
	os.Exit(1)
}
