// Command benchguard is the CI regression gate for the repo's recorded
// benchmark baselines: it re-runs guarded benchmark bodies in-process and
// fails when a measured ns/op regresses more than the tolerance over the
// recorded number in results/BENCH_phy.json. The default gate covers the
// observability layers' zero-cost claim (end_to_end_frame with both no-op
// defaults: nil metrics registry AND nil span collector), the fleet
// runner's single-worker path (fleet_sessions — the serial baseline the
// parallel speedups are measured against), and the link-health monitor's
// hot-path price (end_to_end_frame_health — a full ARQ session with the
// monitor armed, recorded a few % at most over its session_frames nil
// twin). It can also capture a deterministic metrics snapshot from a
// short instrumented session, for upload as a CI artifact.
//
// Re-run mode also gates the session-arena contract (-verify-arena,
// default on): the same fully instrumented workload runs fresh-allocated
// and out of a warm, dirtied arena — single-receiver and broadcast — and
// the telemetry, health, prof and log snapshots must match byte for byte.
//
// Besides the re-run gate, benchguard can statically audit a freshly
// generated phybench report (-results) against the recorded baseline:
// allocs/op must not grow (-gate-allocs), bytes/op on the zero-alloc
// entries must not creep past the baseline plus a small noise slack
// (-gate-bytes), per-core frame throughput and session throughput must
// hold within the tolerance (-gate-throughput),
// and every speedup curve must reach 1.0× at workers=4 (-gate-curves,
// skipped explicitly when the fresh report was taken on a single-core
// host, where parallel twins cannot beat their serial peers). A gated
// name missing from the fresh report is an error, never a skip — a
// renamed or dropped benchmark must not silently disarm its gate.
//
// A third mode gates the bench-history trend (-trend HISTORY.jsonl): the
// newest full run in the log is compared against the rolling median of the
// runs before it (window -trend-window, tolerance -trend-tolerance), and a
// regression names the pipeline stage behind the slow benchmark. The
// rolling median — not the previous run — is the denominator, so one noisy
// run neither trips nor poisons the gate.
//
// The static audit also holds the armed observability twins to their
// paired price: each -gate-overhead entry's overhead_vs_nil (its ns/op
// over its nil twin's, minus one, as recorded by phybench) must stay
// within -overhead-limit. The default pins the stage profiler's and the
// structured logger's session twins (end_to_end_frame_prof,
// end_to_end_frame_vlog) and the streaming fleet aggregation's
// (fleet_sessions_agg over fleet_sessions_telemetry) to 3%.
//
// Usage:
//
//	go run ./cmd/benchguard [-baseline results/BENCH_phy.json]
//	    [-bench end_to_end_frame,fleet_sessions,end_to_end_frame_health]
//	    [-tolerance 0.10] [-benchtime 2s] [-snapshot-out metrics.json]
//	    [-results fresh.json] [-gate-allocs names] [-gate-throughput names]
//	    [-gate-overhead names] [-overhead-limit 0.03]
//	    [-trend results/BENCH_history.jsonl] [-trend-window 5] [-trend-tolerance 0.10]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"smartvlc"
	"smartvlc/internal/bench"
	"smartvlc/internal/telemetry/prof/analyze"
)

type baselineEntry struct {
	Name                string  `json:"name"`
	NsPerOp             float64 `json:"ns_per_op"`
	BytesPerOp          int64   `json:"bytes_per_op"`
	AllocsPerOp         int64   `json:"allocs_per_op"`
	FramesPerSecPerCore float64 `json:"frames_per_sec_per_core"`
	SessionsPerSec      float64 `json:"sessions_per_sec"`
	OverheadVsNil       float64 `json:"overhead_vs_nil"`
}

type curvePoint struct {
	Workers int     `json:"workers"`
	Speedup float64 `json:"speedup_vs_serial"`
}

type speedupCurve struct {
	Name   string       `json:"name"`
	Points []curvePoint `json:"points"`
}

type baselineFile struct {
	NumCPU        int             `json:"num_cpu"`
	Benchmarks    []baselineEntry `json:"benchmarks"`
	SpeedupCurves []speedupCurve  `json:"speedup_curves"`
}

// lookup returns the named entry, or a loud error listing what the file
// actually holds — a gated name that has gone missing from a freshly
// generated report must fail the gate, not skip it.
func (f *baselineFile) lookup(path, name string) (*baselineEntry, error) {
	for i := range f.Benchmarks {
		if f.Benchmarks[i].Name == name {
			return &f.Benchmarks[i], nil
		}
	}
	have := make([]string, 0, len(f.Benchmarks))
	for _, e := range f.Benchmarks {
		have = append(have, e.Name)
	}
	return nil, fmt.Errorf("gated benchmark %q missing from %s (has: %s)", name, path, strings.Join(have, ", "))
}

func main() {
	baselinePath := flag.String("baseline", "results/BENCH_phy.json", "recorded benchmark baseline")
	benchNames := flag.String("bench", "end_to_end_frame,fleet_sessions,end_to_end_frame_health", "comma-separated baseline entries to guard")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional regression over baseline")
	benchtime := flag.Duration("benchtime", 2*time.Second, "minimum measurement time per benchmark")
	snapshotOut := flag.String("snapshot-out", "", "also run a short instrumented session and write its telemetry snapshot JSON here")
	resultsPath := flag.String("results", "", "freshly generated phybench report to audit statically against the baseline (skips the re-run gate)")
	gateAllocs := flag.String("gate-allocs", "end_to_end_frame,receiver_process,phy_transmit,session_frames_arena,fleet_sessions_arena", "comma-separated entries whose allocs/op must not exceed the baseline's")
	gateBytes := flag.String("gate-bytes", "end_to_end_frame,receiver_process,phy_transmit,session_frames_arena", "comma-separated zero-alloc entries whose bytes/op must not creep past the baseline (small slack absorbs runtime accounting noise)")
	gateThroughput := flag.String("gate-throughput", "end_to_end_frame,receiver_process,fleet_sessions,session_frames", "comma-separated entries whose per-core frame / session throughput must hold within the tolerance")
	gateCurves := flag.Bool("gate-curves", true, "with -results: require every speedup curve to reach 1.0x at workers=4 (skipped on single-core hosts)")
	gateOverhead := flag.String("gate-overhead", "end_to_end_frame_prof,end_to_end_frame_vlog,fleet_sessions_agg", "with -results: comma-separated entries whose overhead_vs_nil must stay within -overhead-limit")
	overheadLimit := flag.Float64("overhead-limit", 0.03, "allowed fractional overhead over the nil twin for -gate-overhead entries")
	verifyArena := flag.Bool("verify-arena", true, "in re-run mode: run fresh vs warm-arena session twins and require byte-identical telemetry, health, prof and log snapshots")
	trendPath := flag.String("trend", "", "bench history log (BENCH_history.jsonl) to gate the newest run against its rolling median")
	trendWindow := flag.Int("trend-window", 5, "with -trend: rolling-median window in runs (0 = all)")
	trendTolerance := flag.Float64("trend-tolerance", 0.10, "with -trend: allowed fractional slowdown over the rolling median")
	flag.Parse()

	if *trendPath != "" {
		recs, err := bench.ReadHistory(*trendPath)
		if err != nil {
			fatal(err)
		}
		if analyze.ReportHistory(os.Stdout, recs, *trendWindow, *trendTolerance) {
			fmt.Fprintln(os.Stderr, "benchguard: trend REGRESSION (see report above)")
			os.Exit(1)
		}
		fmt.Println("benchguard: OK (trend)")
		return
	}

	if *resultsPath != "" {
		if err := auditResults(*resultsPath, *baselinePath, *gateAllocs, *gateBytes, *gateThroughput, *gateOverhead, *gateCurves, *tolerance, *overheadLimit); err != nil {
			fatal(err)
		}
		fmt.Println("benchguard: OK (static audit)")
		return
	}

	sys, err := smartvlc.New(smartvlc.DefaultConstraints())
	if err != nil {
		fatal(err)
	}

	if *verifyArena {
		if err := verifyArenaTwins(sys); err != nil {
			fatal(err)
		}
		fmt.Println("arena twins: byte-identical (fresh vs warm, single + broadcast)")
	}

	if *snapshotOut != "" {
		if err := captureSnapshot(*snapshotOut, sys); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *snapshotOut)
	}

	bodies := map[string]func() func(b *testing.B){
		"end_to_end_frame":         func() func(b *testing.B) { return endToEndBody(sys) },
		"fleet_sessions":           func() func(b *testing.B) { return fleetBody(sys, false, false) },
		"fleet_sessions_telemetry": func() func(b *testing.B) { return fleetBody(sys, true, false) },
		"fleet_sessions_agg":       func() func(b *testing.B) { return fleetBody(sys, true, true) },
		"session_frames":           func() func(b *testing.B) { return sessionBody(sys, false, false, false) },
		"end_to_end_frame_health":  func() func(b *testing.B) { return sessionBody(sys, true, false, false) },
		"end_to_end_frame_prof":    func() func(b *testing.B) { return sessionBody(sys, false, true, false) },
		"end_to_end_frame_vlog":    func() func(b *testing.B) { return sessionBody(sys, false, false, true) },
	}

	failed := false
	for _, name := range strings.Split(*benchNames, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		mk, ok := bodies[name]
		if !ok {
			fatal(fmt.Errorf("no benchmark body for %q (known: end_to_end_frame, fleet_sessions, fleet_sessions_telemetry, fleet_sessions_agg, session_frames, end_to_end_frame_health, end_to_end_frame_prof, end_to_end_frame_vlog)", name))
		}
		base, err := loadBaseline(*baselinePath, name)
		if err != nil {
			fatal(err)
		}
		nsPerOp := measure(*benchtime, mk())
		limit := base * (1 + *tolerance)
		fmt.Printf("%s: measured %.0f ns/op, baseline %.0f ns/op, limit %.0f ns/op (+%.0f%%)\n",
			name, nsPerOp, base, limit, *tolerance*100)
		if nsPerOp > limit {
			fmt.Fprintf(os.Stderr, "benchguard: REGRESSION in %s: %.0f ns/op exceeds %.0f ns/op (%.1f%% over baseline)\n",
				name, nsPerOp, limit, (nsPerOp/base-1)*100)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchguard: OK")
}

// endToEndBody is the guarded default configuration: no registry and no
// span collector attached, every metric handle and span hook nil — both
// observability layers must cost nothing here. The spans-enabled twin
// (end_to_end_frame_spans in results/BENCH_phy.json) records the price of
// turning tracing on, for comparison rather than gating.
func endToEndBody(sys *smartvlc.System) func(b *testing.B) {
	slots, err := sys.BuildFrame(0.5, make([]byte, 128))
	if err != nil {
		fatal(err)
	}
	return func(b *testing.B) {
		misses := 0
		for i := 0; i < b.N; i++ {
			got, err := sys.Deliver(smartvlc.Aligned(3, 0), 8000, uint64(i), slots)
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != 1 {
				misses++ // rare phase corners lose a frame; ARQ covers them
			}
		}
		if misses > b.N/20+1 {
			b.Fatalf("%d/%d frames lost", misses, b.N)
		}
	}
}

// fleetBody mirrors cmd/phybench's fleet_sessions workload family: 8
// independent sessions on the single-worker path, guarding the serial
// baseline that every recorded parallel speedup divides by. withTelemetry
// arms a registry per session (fleet_sessions_telemetry) and withAgg
// additionally wires every session into a streaming fleet aggregator
// (fleet_sessions_agg) — the pair behind the aggregation overhead gate.
func fleetBody(sys *smartvlc.System, withTelemetry, withAgg bool) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfgs := make([]smartvlc.SessionConfig, 8)
			for j := range cfgs {
				cfg := smartvlc.DefaultSessionConfig(sys.Scheme())
				cfg.FixedLevel = 0.5
				cfg.Seed = uint64(j + 1)
				if withTelemetry {
					cfg.Telemetry = smartvlc.NewTelemetry()
				}
				cfgs[j] = cfg
			}
			if withAgg {
				fa, err := smartvlc.NewFleetAggregator(smartvlc.FleetAggConfig{WindowSeconds: 0.02}, len(cfgs))
				if err != nil {
					b.Fatal(err)
				}
				for j := range cfgs {
					feed, err := fa.Feed(smartvlc.FleetSessionMeta{
						Index: j, Seed: cfgs[j].Seed,
						Scheme: sys.Scheme().Name(), PayloadBytes: cfgs[j].PayloadBytes,
					})
					if err != nil {
						b.Fatal(err)
					}
					cfgs[j].Watch = feed
				}
			}
			fl, err := smartvlc.RunFleet(cfgs, 0.1, 1)
			if err != nil {
				b.Fatal(err)
			}
			if len(fl.Results) != 8 {
				b.Fatalf("fleet returned %d sessions", len(fl.Results))
			}
			if withAgg && (fl.Agg == nil || fl.Agg.SealedWindows == 0) {
				b.Fatal("fleet aggregation sealed no windows")
			}
		}
	}
}

// sessionBody runs one simulated 0.1 s ARQ session per op, with every
// observability layer off (session_frames), the link-health monitor
// armed (end_to_end_frame_health), the stage profiler armed
// (end_to_end_frame_prof), or the structured logger armed
// (end_to_end_frame_vlog) — the same twins cmd/phybench records, so the
// gate holds each layer to its recorded hot-path price.
func sessionBody(sys *smartvlc.System, withHealth, withProf, withLog bool) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := smartvlc.DefaultSessionConfig(sys.Scheme())
			cfg.FixedLevel = 0.5
			cfg.Seed = uint64(i + 1)
			if withHealth {
				cfg.Health = &smartvlc.HealthConfig{Objectives: smartvlc.DefaultHealthObjectives()}
			}
			if withProf {
				cfg.Prof = smartvlc.NewProfiler()
			}
			if withLog {
				cfg.Logs = smartvlc.NewLogger(smartvlc.LogDebug)
			}
			res, err := smartvlc.RunSession(cfg, 0.1)
			if err != nil {
				b.Fatal(err)
			}
			if res.FramesOK == 0 {
				b.Fatal("no frames delivered")
			}
			if withHealth && res.Health == nil {
				b.Fatal("missing health snapshot")
			}
			if withProf && res.Prof == nil {
				b.Fatal("missing profile snapshot")
			}
			if withLog && res.Logs == nil {
				b.Fatal("missing log snapshot")
			}
		}
	}
}

// verifyArenaTwins is the arena-equivalence gate: the same fully
// instrumented workload runs fresh-allocated and out of a warm, already
// dirtied arena — single-receiver and then broadcast — and the telemetry,
// link-health and stage-profile snapshots must match byte for byte. This
// is the contract that lets every warm-arena benchmark number stand in
// for the fresh path's behavior.
func verifyArenaTwins(sys *smartvlc.System) error {
	mkCfg := func() smartvlc.SessionConfig {
		cfg := smartvlc.DefaultSessionConfig(sys.Scheme())
		cfg.FixedLevel = 0.5
		cfg.Seed = 7
		cfg.Telemetry = smartvlc.NewTelemetry()
		cfg.Health = &smartvlc.HealthConfig{Objectives: smartvlc.DefaultHealthObjectives()}
		cfg.Prof = smartvlc.NewProfiler()
		cfg.Logs = smartvlc.NewLogger(smartvlc.LogDebug)
		return cfg
	}
	compare := func(kind string, fresh, warm []interface{ JSON() ([]byte, error) }) error {
		labels := []string{"telemetry", "health", "prof", "logs"}
		for i := range fresh {
			fb, err := fresh[i].JSON()
			if err != nil {
				return err
			}
			wb, err := warm[i].JSON()
			if err != nil {
				return err
			}
			if !bytes.Equal(fb, wb) {
				return fmt.Errorf("arena twin DIVERGED: %s %s snapshot differs between fresh and warm runs", kind, labels[i])
			}
		}
		return nil
	}

	fresh, err := smartvlc.RunSession(mkCfg(), 0.3)
	if err != nil {
		return err
	}
	a := smartvlc.NewArena()
	// Dirty the arena with a different session shape first, so the gate
	// checks a genuinely reused (not merely pre-sized) arena.
	dirty := mkCfg()
	dirty.Seed = 99
	dirty.FixedLevel = 0.3
	if _, err := a.Run(dirty, 0.2); err != nil {
		return err
	}
	warm, err := a.Run(mkCfg(), 0.3)
	if err != nil {
		return err
	}
	if err := compare("session",
		[]interface{ JSON() ([]byte, error) }{fresh.Telemetry, fresh.Health, fresh.Prof, fresh.Logs},
		[]interface{ JSON() ([]byte, error) }{warm.Telemetry, warm.Health, warm.Prof, warm.Logs}); err != nil {
		return err
	}

	mkBC := func() smartvlc.BroadcastConfig {
		cfg := smartvlc.BroadcastConfig{}
		cfg.Config = mkCfg()
		base := cfg.Geometry
		cfg.Receivers = []smartvlc.ReceiverPose{
			{Geometry: base},
			{Geometry: base, AmbientScale: 1.3},
		}
		return cfg
	}
	freshB, err := smartvlc.RunBroadcast(mkBC(), 0.3)
	if err != nil {
		return err
	}
	warmB, err := a.RunBroadcast(mkBC(), 0.3)
	if err != nil {
		return err
	}
	return compare("broadcast",
		[]interface{ JSON() ([]byte, error) }{freshB.Telemetry, freshB.Health, freshB.Prof, freshB.Logs},
		[]interface{ JSON() ([]byte, error) }{warmB.Telemetry, warmB.Health, warmB.Prof, warmB.Logs})
}

func loadFile(path string) (*baselineFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchguard: parse %s: %w", path, err)
	}
	return &f, nil
}

func loadBaseline(path, name string) (float64, error) {
	f, err := loadFile(path)
	if err != nil {
		return 0, err
	}
	e, err := f.lookup(path, name)
	if err != nil {
		return 0, err
	}
	if e.NsPerOp <= 0 {
		return 0, fmt.Errorf("benchguard: %q entry in %s has no ns/op", name, path)
	}
	return e.NsPerOp, nil
}

// splitNames parses a comma list, dropping empties.
func splitNames(list string) []string {
	var out []string
	for _, n := range strings.Split(list, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// auditResults runs the static gates over a freshly generated phybench
// report: no new allocations on the zero-alloc entries, per-core frame /
// session throughput within tolerance of the recorded baseline, and
// parallel scaling at workers=4. Every gated name must exist in the
// fresh report — lookup errors propagate, they are never downgraded to
// skips.
func auditResults(resultsPath, baselinePath, allocNames, byteNames, throughputNames, overheadNames string, curves bool, tolerance, overheadLimit float64) error {
	fresh, err := loadFile(resultsPath)
	if err != nil {
		return err
	}
	base, err := loadFile(baselinePath)
	if err != nil {
		return err
	}

	var failures []string
	for _, name := range splitNames(allocNames) {
		fe, err := fresh.lookup(resultsPath, name)
		if err != nil {
			return err
		}
		be, err := base.lookup(baselinePath, name)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d allocs/op (baseline %d)\n", name, fe.AllocsPerOp, be.AllocsPerOp)
		if fe.AllocsPerOp > be.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op exceeds baseline %d", name, fe.AllocsPerOp, be.AllocsPerOp))
		}
	}

	// Bytes gate: the zero-alloc entries carry a few residual bytes/op of
	// runtime accounting (e.g. receiver_process's ~27 B/op), which jitter a
	// little between runs — so the limit gets 10% + 64 B of slack over the
	// baseline. Anything larger means a real allocation crept back into a
	// hot path the allocs gate's integer count might still round to zero.
	for _, name := range splitNames(byteNames) {
		fe, err := fresh.lookup(resultsPath, name)
		if err != nil {
			return err
		}
		be, err := base.lookup(baselinePath, name)
		if err != nil {
			return err
		}
		limit := be.BytesPerOp + be.BytesPerOp/10 + 64
		fmt.Printf("%s: %d B/op (baseline %d, limit %d)\n", name, fe.BytesPerOp, be.BytesPerOp, limit)
		if fe.BytesPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %d B/op exceeds limit %d (baseline %d)", name, fe.BytesPerOp, limit, be.BytesPerOp))
		}
	}

	for _, name := range splitNames(throughputNames) {
		fe, err := fresh.lookup(resultsPath, name)
		if err != nil {
			return err
		}
		be, err := base.lookup(baselinePath, name)
		if err != nil {
			return err
		}
		check := func(metric string, got, want float64) {
			if want <= 0 {
				return
			}
			floor := want * (1 - tolerance)
			fmt.Printf("%s: %s %.0f/s (baseline %.0f/s, floor %.0f/s)\n", name, metric, got, want, floor)
			if got < floor {
				failures = append(failures, fmt.Sprintf("%s: %s %.0f/s below floor %.0f/s", name, metric, got, floor))
			}
		}
		check("frames_per_sec_per_core", fe.FramesPerSecPerCore, be.FramesPerSecPerCore)
		check("sessions_per_sec", fe.SessionsPerSec, be.SessionsPerSec)
	}

	// Paired-overhead gate: the armed observability twins must stay within
	// overheadLimit of their nil twins, as measured IN the fresh report —
	// both sides of the pair ran on the same host in the same session, so
	// the ratio is machine-independent in a way raw ns/op is not.
	for _, name := range splitNames(overheadNames) {
		fe, err := fresh.lookup(resultsPath, name)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %+.1f%% vs nil twin (limit %+.1f%%)\n", name, fe.OverheadVsNil*100, overheadLimit*100)
		if fe.OverheadVsNil > overheadLimit {
			failures = append(failures, fmt.Sprintf("%s: %+.1f%% over nil twin exceeds %+.1f%% limit",
				name, fe.OverheadVsNil*100, overheadLimit*100))
		}
	}

	if curves {
		if fresh.NumCPU <= 1 {
			fmt.Printf("curve gate: SKIPPED — fresh report taken on a %d-CPU host; parallel twins cannot beat their serial peers there\n", fresh.NumCPU)
		} else {
			if len(fresh.SpeedupCurves) == 0 {
				return fmt.Errorf("benchguard: curve gate armed but %s records no speedup_curves", resultsPath)
			}
			for _, c := range fresh.SpeedupCurves {
				at4 := 0.0
				found := false
				for _, p := range c.Points {
					if p.Workers == 4 {
						at4, found = p.Speedup, true
					}
				}
				if !found {
					return fmt.Errorf("benchguard: curve %q has no workers=4 point", c.Name)
				}
				fmt.Printf("curve %s: %.2fx at workers=4\n", c.Name, at4)
				if at4 < 1.0 {
					failures = append(failures, fmt.Sprintf("curve %s: %.2fx at workers=4, below 1.0x", c.Name, at4))
				}
			}
		}
	}

	if len(failures) > 0 {
		return fmt.Errorf("benchguard: %d gate failure(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

// captureSnapshot runs one short fully-instrumented session and writes
// its deterministic telemetry snapshot — the CI artifact that lets a
// reviewer inspect every metric the pipeline recorded for this commit.
func captureSnapshot(path string, sys *smartvlc.System) error {
	cfg := smartvlc.DefaultSessionConfig(sys.Scheme())
	cfg.FixedLevel = 0.5
	cfg.Telemetry = smartvlc.NewTelemetry()
	res, err := smartvlc.RunSession(cfg, 0.5)
	if err != nil {
		return err
	}
	j, err := res.Telemetry.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, j, 0o644)
}

// measure accumulates testing.Benchmark runs until benchtime is reached,
// as cmd/phybench does, and returns the merged ns/op.
func measure(benchtime time.Duration, body func(b *testing.B)) float64 {
	var total testing.BenchmarkResult
	for total.T < benchtime {
		r := testing.Benchmark(body)
		total.N += r.N
		total.T += r.T
	}
	return float64(total.T.Nanoseconds()) / float64(total.N)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
