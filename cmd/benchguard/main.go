// Command benchguard is the CI gate for the telemetry layer's zero-cost
// claim: it re-runs the end-to-end frame benchmark with the default
// (no-op, nil-registry) telemetry and fails when the measured ns/op
// regresses more than the tolerance over the recorded baseline in
// results/BENCH_phy.json. It can also capture a deterministic metrics
// snapshot from a short instrumented session, for upload as a CI
// artifact.
//
// Usage:
//
//	go run ./cmd/benchguard [-baseline results/BENCH_phy.json]
//	    [-tolerance 0.10] [-benchtime 2s] [-snapshot-out metrics.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"smartvlc"
)

type baselineEntry struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

type baselineFile struct {
	Benchmarks []baselineEntry `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "results/BENCH_phy.json", "recorded benchmark baseline")
	benchName := flag.String("bench", "end_to_end_frame", "baseline entry to guard")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional regression over baseline")
	benchtime := flag.Duration("benchtime", 2*time.Second, "minimum measurement time")
	snapshotOut := flag.String("snapshot-out", "", "also run a short instrumented session and write its telemetry snapshot JSON here")
	flag.Parse()

	sys, err := smartvlc.New(smartvlc.DefaultConstraints())
	if err != nil {
		fatal(err)
	}

	if *snapshotOut != "" {
		if err := captureSnapshot(*snapshotOut, sys); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *snapshotOut)
	}

	base, err := loadBaseline(*baselinePath, *benchName)
	if err != nil {
		fatal(err)
	}

	slots, err := sys.BuildFrame(0.5, make([]byte, 128))
	if err != nil {
		fatal(err)
	}
	// The guarded configuration is the default one: no registry attached,
	// every metric handle nil — the telemetry layer must cost nothing here.
	nsPerOp := measure(*benchtime, func(b *testing.B) {
		misses := 0
		for i := 0; i < b.N; i++ {
			got, err := sys.Deliver(smartvlc.Aligned(3, 0), 8000, uint64(i), slots)
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != 1 {
				misses++ // rare phase corners lose a frame; ARQ covers them
			}
		}
		if misses > b.N/20+1 {
			b.Fatalf("%d/%d frames lost", misses, b.N)
		}
	})

	limit := base * (1 + *tolerance)
	fmt.Printf("%s: measured %.0f ns/op, baseline %.0f ns/op, limit %.0f ns/op (+%.0f%%)\n",
		*benchName, nsPerOp, base, limit, *tolerance*100)
	if nsPerOp > limit {
		fmt.Fprintf(os.Stderr, "benchguard: REGRESSION: %.0f ns/op exceeds %.0f ns/op (%.1f%% over baseline)\n",
			nsPerOp, limit, (nsPerOp/base-1)*100)
		os.Exit(1)
	}
	fmt.Println("benchguard: OK")
}

func loadBaseline(path, name string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("benchguard: parse %s: %w", path, err)
	}
	for _, e := range f.Benchmarks {
		if e.Name == name && e.NsPerOp > 0 {
			return e.NsPerOp, nil
		}
	}
	return 0, fmt.Errorf("benchguard: no %q entry in %s", name, path)
}

// captureSnapshot runs one short fully-instrumented session and writes
// its deterministic telemetry snapshot — the CI artifact that lets a
// reviewer inspect every metric the pipeline recorded for this commit.
func captureSnapshot(path string, sys *smartvlc.System) error {
	cfg := smartvlc.DefaultSessionConfig(sys.Scheme())
	cfg.FixedLevel = 0.5
	cfg.Telemetry = smartvlc.NewTelemetry()
	res, err := smartvlc.RunSession(cfg, 0.5)
	if err != nil {
		return err
	}
	j, err := res.Telemetry.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, j, 0o644)
}

// measure accumulates testing.Benchmark runs until benchtime is reached,
// as cmd/phybench does, and returns the merged ns/op.
func measure(benchtime time.Duration, body func(b *testing.B)) float64 {
	var total testing.BenchmarkResult
	for total.T < benchtime {
		r := testing.Benchmark(body)
		total.N += r.N
		total.T += r.T
	}
	return float64(total.T.Nanoseconds()) / float64(total.N)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
