// Command benchguard is the CI regression gate for the repo's recorded
// benchmark baselines: it re-runs guarded benchmark bodies in-process and
// fails when a measured ns/op regresses more than the tolerance over the
// recorded number in results/BENCH_phy.json. The default gate covers the
// observability layers' zero-cost claim (end_to_end_frame with both no-op
// defaults: nil metrics registry AND nil span collector), the fleet
// runner's single-worker path (fleet_sessions — the serial baseline the
// parallel speedups are measured against), and the link-health monitor's
// hot-path price (end_to_end_frame_health — a full ARQ session with the
// monitor armed, recorded a few % at most over its session_frames nil
// twin). It can also capture a deterministic metrics snapshot from a
// short instrumented session, for upload as a CI artifact.
//
// Usage:
//
//	go run ./cmd/benchguard [-baseline results/BENCH_phy.json]
//	    [-bench end_to_end_frame,fleet_sessions,end_to_end_frame_health]
//	    [-tolerance 0.10] [-benchtime 2s] [-snapshot-out metrics.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"smartvlc"
)

type baselineEntry struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

type baselineFile struct {
	Benchmarks []baselineEntry `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "results/BENCH_phy.json", "recorded benchmark baseline")
	benchNames := flag.String("bench", "end_to_end_frame,fleet_sessions,end_to_end_frame_health", "comma-separated baseline entries to guard")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional regression over baseline")
	benchtime := flag.Duration("benchtime", 2*time.Second, "minimum measurement time per benchmark")
	snapshotOut := flag.String("snapshot-out", "", "also run a short instrumented session and write its telemetry snapshot JSON here")
	flag.Parse()

	sys, err := smartvlc.New(smartvlc.DefaultConstraints())
	if err != nil {
		fatal(err)
	}

	if *snapshotOut != "" {
		if err := captureSnapshot(*snapshotOut, sys); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *snapshotOut)
	}

	bodies := map[string]func() func(b *testing.B){
		"end_to_end_frame":        func() func(b *testing.B) { return endToEndBody(sys) },
		"fleet_sessions":          func() func(b *testing.B) { return fleetBody(sys) },
		"session_frames":          func() func(b *testing.B) { return sessionBody(sys, false) },
		"end_to_end_frame_health": func() func(b *testing.B) { return sessionBody(sys, true) },
	}

	failed := false
	for _, name := range strings.Split(*benchNames, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		mk, ok := bodies[name]
		if !ok {
			fatal(fmt.Errorf("no benchmark body for %q (known: end_to_end_frame, fleet_sessions, session_frames, end_to_end_frame_health)", name))
		}
		base, err := loadBaseline(*baselinePath, name)
		if err != nil {
			fatal(err)
		}
		nsPerOp := measure(*benchtime, mk())
		limit := base * (1 + *tolerance)
		fmt.Printf("%s: measured %.0f ns/op, baseline %.0f ns/op, limit %.0f ns/op (+%.0f%%)\n",
			name, nsPerOp, base, limit, *tolerance*100)
		if nsPerOp > limit {
			fmt.Fprintf(os.Stderr, "benchguard: REGRESSION in %s: %.0f ns/op exceeds %.0f ns/op (%.1f%% over baseline)\n",
				name, nsPerOp, limit, (nsPerOp/base-1)*100)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchguard: OK")
}

// endToEndBody is the guarded default configuration: no registry and no
// span collector attached, every metric handle and span hook nil — both
// observability layers must cost nothing here. The spans-enabled twin
// (end_to_end_frame_spans in results/BENCH_phy.json) records the price of
// turning tracing on, for comparison rather than gating.
func endToEndBody(sys *smartvlc.System) func(b *testing.B) {
	slots, err := sys.BuildFrame(0.5, make([]byte, 128))
	if err != nil {
		fatal(err)
	}
	return func(b *testing.B) {
		misses := 0
		for i := 0; i < b.N; i++ {
			got, err := sys.Deliver(smartvlc.Aligned(3, 0), 8000, uint64(i), slots)
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != 1 {
				misses++ // rare phase corners lose a frame; ARQ covers them
			}
		}
		if misses > b.N/20+1 {
			b.Fatalf("%d/%d frames lost", misses, b.N)
		}
	}
}

// fleetBody mirrors cmd/phybench's fleet_sessions workload: 8 independent
// sessions on the single-worker path, guarding the serial baseline that
// every recorded parallel speedup divides by.
func fleetBody(sys *smartvlc.System) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfgs := make([]smartvlc.SessionConfig, 8)
			for j := range cfgs {
				cfg := smartvlc.DefaultSessionConfig(sys.Scheme())
				cfg.FixedLevel = 0.5
				cfg.Seed = uint64(j + 1)
				cfgs[j] = cfg
			}
			fl, err := smartvlc.RunFleet(cfgs, 0.1, 1)
			if err != nil {
				b.Fatal(err)
			}
			if len(fl.Results) != 8 {
				b.Fatalf("fleet returned %d sessions", len(fl.Results))
			}
		}
	}
}

// sessionBody runs one simulated 0.1 s ARQ session per op, with the
// link-health monitor off (session_frames) or armed with the default
// objectives (end_to_end_frame_health) — the same pair cmd/phybench
// records, so the gate holds the monitor to its recorded hot-path price.
func sessionBody(sys *smartvlc.System, withHealth bool) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := smartvlc.DefaultSessionConfig(sys.Scheme())
			cfg.FixedLevel = 0.5
			cfg.Seed = uint64(i + 1)
			if withHealth {
				cfg.Health = &smartvlc.HealthConfig{Objectives: smartvlc.DefaultHealthObjectives()}
			}
			res, err := smartvlc.RunSession(cfg, 0.1)
			if err != nil {
				b.Fatal(err)
			}
			if res.FramesOK == 0 {
				b.Fatal("no frames delivered")
			}
			if withHealth && res.Health == nil {
				b.Fatal("missing health snapshot")
			}
		}
	}
}

func loadBaseline(path, name string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("benchguard: parse %s: %w", path, err)
	}
	for _, e := range f.Benchmarks {
		if e.Name == name && e.NsPerOp > 0 {
			return e.NsPerOp, nil
		}
	}
	return 0, fmt.Errorf("benchguard: no %q entry in %s", name, path)
}

// captureSnapshot runs one short fully-instrumented session and writes
// its deterministic telemetry snapshot — the CI artifact that lets a
// reviewer inspect every metric the pipeline recorded for this commit.
func captureSnapshot(path string, sys *smartvlc.System) error {
	cfg := smartvlc.DefaultSessionConfig(sys.Scheme())
	cfg.FixedLevel = 0.5
	cfg.Telemetry = smartvlc.NewTelemetry()
	res, err := smartvlc.RunSession(cfg, 0.5)
	if err != nil {
		return err
	}
	j, err := res.Telemetry.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, j, 0o644)
}

// measure accumulates testing.Benchmark runs until benchtime is reached,
// as cmd/phybench does, and returns the merged ns/op.
func measure(benchtime time.Duration, body func(b *testing.B)) float64 {
	var total testing.BenchmarkResult
	for total.T < benchtime {
		r := testing.Benchmark(body)
		total.N += r.N
		total.T += r.T
	}
	return float64(total.T.Nanoseconds()) / float64(total.N)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
