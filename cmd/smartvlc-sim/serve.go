package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"

	"smartvlc"
)

// serveOpts is everything the HTTP endpoints can expose after a run.
// Routes are registered only for the artifacts actually present, so the
// single-session and fleet paths share one construction site instead of
// each wiring its own mux (fleet mode used to serve an empty /trace, and
// a second registration site is how duplicate-pattern panics start).
type serveOpts struct {
	// reg supplies HELP text for the Prometheus exposition; nil (the
	// merged-fleet case) falls back to the snapshot's own exposition.
	reg *smartvlc.Telemetry
	// snap is the metrics snapshot served at /metrics and /metrics.json.
	snap *smartvlc.TelemetrySnapshot
	// spans, when non-nil, is served at /trace as a Chrome trace_event
	// file.
	spans *smartvlc.SpanSnapshot
	// health, when non-nil, is served at /health (canonical JSON) and
	// /health/stream (NDJSON, one object per time bucket and transition).
	health *smartvlc.HealthSnapshot
	// runtimeMetrics appends Go runtime gauges (goroutines, heap) to the
	// Prometheus exposition at scrape time. They reflect the serving
	// process, not the simulation, so they never enter the canonical
	// snapshot files — determinism of -metrics-out is preserved.
	runtimeMetrics bool
}

// buildMux registers the report endpoints for the artifacts in opts.
// Always present: /metrics, /metrics.json. Flag-gated: /trace, /health,
// /health/stream. pprof is deliberately NOT here — it serves on its own
// address (see servePprof) so debug handlers never leak onto the metrics
// port.
func buildMux(o serveOpts) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		var err error
		if o.reg != nil {
			err = o.reg.WritePrometheus(w)
		} else {
			err = o.snap.WritePrometheus(w, nil)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if o.runtimeMetrics {
			writeRuntimeMetrics(w)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		j, err := o.snap.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(j)
	})
	if o.spans != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := o.spans.WriteChromeTrace(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	if o.health != nil {
		mux.HandleFunc("/health", func(w http.ResponseWriter, _ *http.Request) {
			j, err := o.health.JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(j)
		})
		mux.HandleFunc("/health/stream", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			if err := o.health.WriteNDJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	return mux
}

// writeRuntimeMetrics appends Go runtime gauges in Prometheus text
// exposition. Scrape-time values — never part of canonical snapshots.
func writeRuntimeMetrics(w http.ResponseWriter) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP go_goroutines Number of goroutines in the serving process.\n")
	fmt.Fprintf(w, "# TYPE go_goroutines gauge\n")
	fmt.Fprintf(w, "go_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP go_heap_alloc_bytes Bytes of allocated heap objects.\n")
	fmt.Fprintf(w, "# TYPE go_heap_alloc_bytes gauge\n")
	fmt.Fprintf(w, "go_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "# HELP go_heap_sys_bytes Bytes of heap obtained from the OS.\n")
	fmt.Fprintf(w, "# TYPE go_heap_sys_bytes gauge\n")
	fmt.Fprintf(w, "go_heap_sys_bytes %d\n", ms.HeapSys)
	fmt.Fprintf(w, "# HELP go_gc_cycles_total Completed GC cycles.\n")
	fmt.Fprintf(w, "# TYPE go_gc_cycles_total counter\n")
	fmt.Fprintf(w, "go_gc_cycles_total %d\n", ms.NumGC)
}

// pprofMux builds an explicit pprof mux. Importing net/http/pprof for the
// handler functions alone also registers them on http.DefaultServeMux as
// an init side effect; by never serving DefaultServeMux, those stay dark
// and debug routes only ever appear on the dedicated -pprof-addr.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// servePprof serves the profiling endpoints on their own address in the
// background, for profiling long fleet runs or the serving process.
func servePprof(addr string) {
	go func() {
		if err := http.ListenAndServe(addr, pprofMux()); err != nil {
			fmt.Fprintln(os.Stderr, "smartvlc-sim: pprof:", err)
		}
	}()
	fmt.Printf("pprof       : serving on http://%s/debug/pprof/\n", addr)
}
