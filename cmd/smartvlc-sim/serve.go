package main

import (
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime/metrics"

	"smartvlc"
)

// serveOpts is everything the HTTP endpoints can expose after a run.
// Routes are registered only for the artifacts actually present, so the
// single-session and fleet paths share one construction site instead of
// each wiring its own mux (fleet mode used to serve an empty /trace, and
// a second registration site is how duplicate-pattern panics start).
type serveOpts struct {
	// reg supplies HELP text for the Prometheus exposition; nil (the
	// merged-fleet case) falls back to the snapshot's own exposition.
	reg *smartvlc.Telemetry
	// snap is the metrics snapshot served at /metrics and /metrics.json.
	snap *smartvlc.TelemetrySnapshot
	// spans, when non-nil, is served at /trace as a Chrome trace_event
	// file.
	spans *smartvlc.SpanSnapshot
	// health, when non-nil, is served at /health (canonical JSON) and
	// /health/stream (NDJSON, one object per time bucket and transition).
	health *smartvlc.HealthSnapshot
	// prof, when non-nil, is served at /prof (canonical stage-profile
	// JSON, vlcprof's input) and /prof/folded (folded stacks for flame
	// graphs; ?metric= selects the cost dimension, default samples).
	prof *smartvlc.ProfSnapshot
	// logs, when non-nil, is served at /logs (canonical JSON) and
	// /logs/stream (NDJSON, one record per line — vlclog tail's input).
	logs *smartvlc.LogSnapshot
	// agg, when non-nil, is called per request to serve the streaming
	// fleet aggregation at /fleet (canonical JSON) and /fleet/stream
	// (NDJSON). It is a getter rather than a snapshot because -fleet-watch
	// serves these routes while the fleet is still running — each request
	// sees the rollups and worst-sessions tables as of that moment. A nil
	// return (aggregator not started yet) answers 503.
	agg func() *smartvlc.FleetAggSnapshot
	// runtimeMetrics appends Go runtime gauges (goroutines, heap) to the
	// Prometheus exposition at scrape time. They reflect the serving
	// process, not the simulation, so they never enter the canonical
	// snapshot files — determinism of -metrics-out is preserved.
	runtimeMetrics bool
}

// buildMux registers the report endpoints for the artifacts in opts.
// Always present: /metrics, /metrics.json, /metrics.om (OpenMetrics,
// where histogram exemplars ride the exposition). Flag-gated: /trace,
// /health, /health/stream, /prof, /prof/folded, /logs, /logs/stream,
// /fleet, /fleet/stream. pprof is deliberately
// NOT here — it serves on its own address (see servePprof) so debug
// handlers never leak onto the metrics port.
func buildMux(o serveOpts) *http.ServeMux {
	mux := http.NewServeMux()
	addRoutes(mux, o)
	return mux
}

// addFleetRoutes registers only /fleet and /fleet/stream, backed by the
// getter. The -fleet-watch path calls this before the run starts (live
// serving) and later adds the remaining report routes to the same mux
// with addRoutes once the artifacts exist.
func addFleetRoutes(mux *http.ServeMux, agg func() *smartvlc.FleetAggSnapshot) {
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, _ *http.Request) {
		s := agg()
		if s == nil {
			http.Error(w, "fleet aggregation not started", http.StatusServiceUnavailable)
			return
		}
		j, err := s.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(j)
	})
	mux.HandleFunc("/fleet/stream", func(w http.ResponseWriter, _ *http.Request) {
		s := agg()
		if s == nil {
			http.Error(w, "fleet aggregation not started", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := s.WriteNDJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// addRoutes registers the report endpoints on an existing mux (see
// buildMux). Split out so the live -fleet-watch server, whose mux starts
// serving before the run finishes, can gain the post-run routes without
// a second mux.
func addRoutes(mux *http.ServeMux, o serveOpts) {
	if o.agg != nil {
		addFleetRoutes(mux, o.agg)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		var err error
		if o.reg != nil {
			err = o.reg.WritePrometheus(w)
		} else {
			err = o.snap.WritePrometheus(w, nil)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if o.runtimeMetrics {
			writeRuntimeMetrics(w)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		j, err := o.snap.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(j)
	})
	mux.HandleFunc("/metrics.om", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		var err error
		if o.reg != nil {
			err = o.reg.WriteOpenMetrics(w)
		} else {
			err = o.snap.WriteOpenMetrics(w, nil)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if o.spans != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := o.spans.WriteChromeTrace(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	if o.health != nil {
		mux.HandleFunc("/health", func(w http.ResponseWriter, _ *http.Request) {
			j, err := o.health.JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(j)
		})
		mux.HandleFunc("/health/stream", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			if err := o.health.WriteNDJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	if o.prof != nil {
		mux.HandleFunc("/prof", func(w http.ResponseWriter, _ *http.Request) {
			j, err := o.prof.JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(j)
		})
		mux.HandleFunc("/prof/folded", func(w http.ResponseWriter, r *http.Request) {
			m := smartvlc.ProfSamples
			if name := r.URL.Query().Get("metric"); name != "" {
				var err error
				if m, err = parseProfMetric(name); err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := o.prof.WriteFolded(w, m); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	if o.logs != nil {
		mux.HandleFunc("/logs", func(w http.ResponseWriter, _ *http.Request) {
			j, err := o.logs.JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(j)
		})
		mux.HandleFunc("/logs/stream", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			if err := o.logs.WriteNDJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
}

// runtimeSampleNames are the runtime/metrics series behind the
// -runtime-metrics appendix. The two histogram-valued entries feed p99
// gauges; the rest map one-to-one onto exposition lines.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/goal:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// writeRuntimeMetrics appends Go runtime gauges in Prometheus text
// exposition, sampled from the runtime/metrics package: scheduler and GC
// tail latency (p99 over the process-lifetime histograms), the GC heap
// goal and cycle count, live heap bytes and the goroutine count.
// Scrape-time values — never part of canonical snapshots.
func writeRuntimeMetrics(w http.ResponseWriter) {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			writeRuntimeGauge(w, "go_goroutines", "gauge",
				"Number of live goroutines in the serving process.", float64(s.Value.Uint64()))
		case "/memory/classes/heap/objects:bytes":
			writeRuntimeGauge(w, "go_heap_objects_bytes", "gauge",
				"Bytes occupied by live heap objects plus dead objects not yet swept.", float64(s.Value.Uint64()))
		case "/gc/heap/goal:bytes":
			writeRuntimeGauge(w, "go_gc_heap_goal_bytes", "gauge",
				"Heap size target of the next GC cycle.", float64(s.Value.Uint64()))
		case "/gc/cycles/total:gc-cycles":
			writeRuntimeGauge(w, "go_gc_cycles_total", "counter",
				"Completed GC cycles.", float64(s.Value.Uint64()))
		case "/gc/pauses:seconds":
			writeRuntimeGauge(w, "go_gc_pause_p99_seconds", "gauge",
				"p99 stop-the-world GC pause over the process lifetime.", histP99(s.Value.Float64Histogram()))
		case "/sched/latencies:seconds":
			writeRuntimeGauge(w, "go_sched_latency_p99_seconds", "gauge",
				"p99 time goroutines spent runnable before running, process lifetime.", histP99(s.Value.Float64Histogram()))
		}
	}
}

// writeRuntimeGauge emits one HELP/TYPE/sample triple. Values are
// rendered with %g: runtime byte and count gauges are integral, the
// latency p99s are small floats.
func writeRuntimeGauge(w http.ResponseWriter, name, typ, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
}

// histP99 extracts the 99th percentile from a runtime/metrics histogram:
// the upper bound of the first bucket at which the cumulative count
// reaches 99% of observations. Unbounded edge buckets fall back to their
// finite side. Returns 0 for an empty or absent histogram.
func histP99(h *metrics.Float64Histogram) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	thresh := uint64(math.Ceil(0.99 * float64(total)))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= thresh {
			// Bucket i spans Buckets[i]..Buckets[i+1].
			if ub := h.Buckets[i+1]; !math.IsInf(ub, 1) {
				return ub
			}
			return h.Buckets[i]
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// pprofMux builds an explicit pprof mux. Importing net/http/pprof for the
// handler functions alone also registers them on http.DefaultServeMux as
// an init side effect; by never serving DefaultServeMux, those stay dark
// and debug routes only ever appear on the dedicated -pprof-addr.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// servePprof serves the profiling endpoints on their own address in the
// background, for profiling long fleet runs or the serving process.
func servePprof(addr string) {
	go func() {
		if err := http.ListenAndServe(addr, pprofMux()); err != nil {
			fmt.Fprintln(os.Stderr, "smartvlc-sim: pprof:", err)
		}
	}()
	fmt.Printf("pprof       : serving on http://%s/debug/pprof/\n", addr)
}
