package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"smartvlc"
)

// fullOpts runs a short session with every artifact enabled and returns
// the corresponding serveOpts.
func fullOpts(t *testing.T) serveOpts {
	t.Helper()
	sch, err := smartvlc.NewAMPPMScheme(smartvlc.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smartvlc.DefaultSessionConfig(sch)
	cfg.Telemetry = smartvlc.NewTelemetry()
	cfg.Spans = smartvlc.NewSpanCollector()
	cfg.Health = &smartvlc.HealthConfig{Objectives: smartvlc.DefaultHealthObjectives()}
	cfg.Prof = smartvlc.NewProfiler()
	cfg.Logs = smartvlc.NewLogger(smartvlc.LogDebug)
	res, err := smartvlc.RunSession(cfg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return serveOpts{
		reg: cfg.Telemetry, snap: res.Telemetry, spans: res.Spans,
		health: res.Health, prof: res.Prof, logs: res.Logs, runtimeMetrics: true,
	}
}

func get(t *testing.T, o serveOpts, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	buildMux(o).ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

// TestBuildMuxFullRoutes verifies every endpoint answers when all
// artifacts are present, including the scrape-time runtime gauges.
func TestBuildMuxFullRoutes(t *testing.T) {
	o := fullOpts(t)
	for path, want := range map[string]string{
		"/metrics":       "go_goroutines",
		"/metrics.json":  "{",
		"/metrics.om":    "# EOF",
		"/trace":         "traceEvents",
		"/health":        "\"state\"",
		"/health/stream": "\n",
		"/prof":          "\"stage\"",
		"/prof/folded":   ";",
		"/logs":          "\"records\"",
		"/logs/stream":   "\"stage\":\"sim/session\"",
	} {
		code, body := get(t, o, path)
		if code != 200 {
			t.Errorf("%s: status %d", path, code)
		}
		if !strings.Contains(body, want) {
			t.Errorf("%s: body missing %q:\n%s", path, want, truncate(body))
		}
	}
}

// TestBuildMuxGatedRoutes verifies that absent artifacts mean absent
// routes: fleet mode (no spans, no per-run health) must 404 on /trace and
// /health rather than serve empty payloads, and the runtime gauges stay
// out of /metrics unless requested.
func TestBuildMuxGatedRoutes(t *testing.T) {
	o := fullOpts(t)
	o.reg = nil // fleet mode serves the merged snapshot without a registry
	o.spans = nil
	o.health = nil
	o.prof = nil
	o.logs = nil
	o.runtimeMetrics = false
	for _, path := range []string{"/trace", "/health", "/health/stream", "/prof", "/prof/folded", "/logs", "/logs/stream"} {
		if code, _ := get(t, o, path); code != 404 {
			t.Errorf("%s: status %d, want 404", path, code)
		}
	}
	code, body := get(t, o, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics: status %d", code)
	}
	if strings.Contains(body, "go_goroutines") {
		t.Error("/metrics leaked runtime gauges with runtimeMetrics off")
	}
}

// TestRuntimeMetricsAppendix pins the runtime/metrics-sampled appendix:
// scheduler/GC tail gauges and the heap goal appear on /metrics when
// runtimeMetrics is set, each with HELP and TYPE lines.
func TestRuntimeMetricsAppendix(t *testing.T) {
	_, body := get(t, fullOpts(t), "/metrics")
	for _, name := range []string{
		"go_goroutines", "go_heap_objects_bytes", "go_gc_heap_goal_bytes",
		"go_gc_cycles_total", "go_gc_pause_p99_seconds", "go_sched_latency_p99_seconds",
	} {
		if !strings.Contains(body, "# TYPE "+name+" ") || !strings.Contains(body, "\n"+name+" ") {
			t.Errorf("/metrics appendix missing runtime gauge %q", name)
		}
	}
}

// TestOpenMetricsExemplars verifies /metrics.om carries the histogram
// exemplars in OpenMetrics syntax (a `# {label="…"} value ts` suffix on
// bucket lines) — the drill-down breadcrumbs Prometheus-compatible
// scrapers understand.
func TestOpenMetricsExemplars(t *testing.T) {
	code, body := get(t, fullOpts(t), "/metrics.om")
	if code != 200 {
		t.Fatalf("/metrics.om: status %d", code)
	}
	if !strings.Contains(body, "_bucket{") || !strings.Contains(body, " # {") {
		t.Fatalf("/metrics.om carries no bucket exemplars:\n%s", truncate(body))
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Error("/metrics.om missing the OpenMetrics # EOF terminator")
	}
}

// TestProfFoldedMetricParam verifies the ?metric= selector switches the
// folded export's cost dimension and rejects unknown names with a 400.
func TestProfFoldedMetricParam(t *testing.T) {
	o := fullOpts(t)
	code, slots := get(t, o, "/prof/folded?metric=slots")
	if code != 200 || !strings.Contains(slots, ";") {
		t.Fatalf("/prof/folded?metric=slots: status %d body %s", code, truncate(slots))
	}
	_, samples := get(t, o, "/prof/folded")
	if slots == samples {
		t.Error("metric=slots produced the same folded output as the samples default")
	}
	if code, _ := get(t, o, "/prof/folded?metric=bogus"); code != 400 {
		t.Errorf("/prof/folded?metric=bogus: status %d, want 400", code)
	}
}

// TestBuildMuxTwice guards the regression this helper exists for: the
// single-session and fleet paths used to register handlers independently,
// and a second registration on a shared mux panics with "multiple
// registrations". Two builds must each produce a working, independent mux.
func TestBuildMuxTwice(t *testing.T) {
	o := fullOpts(t)
	for i, mux := range []*http.ServeMux{buildMux(o), buildMux(o)} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("mux %d: status %d", i, rec.Code)
		}
	}
}

// aggOpts runs a small watched fleet and returns serveOpts exposing its
// aggregation snapshot through the live getter.
func aggOpts(t *testing.T) serveOpts {
	t.Helper()
	sch, err := smartvlc.NewAMPPMScheme(smartvlc.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	fa, err := smartvlc.NewFleetAggregator(smartvlc.FleetAggConfig{WindowSeconds: 0.05}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]smartvlc.SessionConfig, 2)
	for i := range cfgs {
		cfg := smartvlc.DefaultSessionConfig(sch)
		cfg.Seed = uint64(i + 1)
		cfg.Telemetry = smartvlc.NewTelemetry()
		feed, err := fa.Feed(smartvlc.FleetSessionMeta{Index: i, Seed: cfg.Seed, Scheme: sch.Name(), PayloadBytes: cfg.PayloadBytes})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Watch = feed
		cfgs[i] = cfg
	}
	fl, err := smartvlc.RunFleet(cfgs, 0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	snap := fl.Agg
	return serveOpts{
		snap: fl.Telemetry,
		agg:  func() *smartvlc.FleetAggSnapshot { return snap },
	}
}

// TestFleetRoutes verifies /fleet serves the aggregation snapshot as
// JSON and /fleet/stream as typed NDJSON, and that the routes 404 when
// no aggregator was armed.
func TestFleetRoutes(t *testing.T) {
	o := aggOpts(t)
	code, body := get(t, o, "/fleet")
	if code != 200 || !strings.Contains(body, "\"sealed_windows\"") || !strings.Contains(body, "\"top_ser\"") {
		t.Fatalf("/fleet: status %d body %s", code, truncate(body))
	}
	code, body = get(t, o, "/fleet/stream")
	if code != 200 || !strings.Contains(body, "\"type\":\"fleet\"") || !strings.Contains(body, "\"type\":\"point\"") {
		t.Fatalf("/fleet/stream: status %d body %s", code, truncate(body))
	}
	o.agg = nil
	if code, _ := get(t, o, "/fleet"); code != 404 {
		t.Errorf("/fleet without an aggregator: status %d, want 404", code)
	}
}

// TestFleetRoutesBeforeStart pins the live-server startup window: the
// getter returning nil (no repeat has begun) answers 503, not a crash or
// an empty payload.
func TestFleetRoutesBeforeStart(t *testing.T) {
	o := serveOpts{
		snap: &smartvlc.TelemetrySnapshot{},
		agg:  func() *smartvlc.FleetAggSnapshot { return nil },
	}
	for _, path := range []string{"/fleet", "/fleet/stream"} {
		if code, _ := get(t, o, path); code != 503 {
			t.Errorf("%s before aggregation starts: status %d, want 503", path, code)
		}
	}
}

// TestPprofMuxIsolated verifies the debug routes live only on the pprof
// mux — the metrics mux must not answer /debug/pprof/.
func TestPprofMuxIsolated(t *testing.T) {
	rec := httptest.NewRecorder()
	pprofMux().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("pprof mux: status %d", rec.Code)
	}
	if code, _ := get(t, fullOpts(t), "/debug/pprof/"); code == 200 {
		t.Error("metrics mux answered /debug/pprof/ — debug routes leaked")
	}
}

func truncate(s string) string {
	if len(s) > 400 {
		return s[:400] + "…"
	}
	return s
}
