// Command smartvlc-sim runs one end-to-end SmartVLC link session — or a
// fleet of them — over the simulated optical channel and prints a
// throughput/reliability report.
//
// Usage examples:
//
//	smartvlc-sim -scheme amppm -level 0.3 -distance 3 -seconds 2
//	smartvlc-sim -scheme ookct -level 0.1 -ambient 9000
//	smartvlc-sim -scheme amppm -dynamic -seconds 30
//	smartvlc-sim -sessions 8 -workers 4 -seconds 0.5
//
// With -sessions N > 1 the command runs N independent sessions (seeds
// seed, seed+1, …) across -workers goroutines and reports aggregate
// throughput plus the sessions/sec wall-clock rate; the metrics flags
// then export the merged fleet snapshot. Results are byte-identical for
// every -workers value.
//
// With -dynamic the session replays the paper's blind-pull scenario: the
// ambient light ramps up while the LED adapts to keep the room constant.
//
// Telemetry: -metrics-out FILE writes the session's deterministic metrics
// snapshot as JSON ("-" for stdout, or a .prom suffix for Prometheus text
// exposition); -metrics-addr HOST:PORT additionally serves the snapshot
// over HTTP at /metrics (Prometheus) and /metrics.json after the run.
//
// Tracing: -trace-out FILE writes the session's causal frame spans as a
// Chrome trace_event file (open it in Perfetto or chrome://tracing); with
// -metrics-addr the same trace is served at /trace. -flight-dir DIR arms
// the anomaly flight recorder — decode failures, hunt misses and ACK
// timeouts dump diagnostic bundles there (inspect with vlctrace bundle).
// In fleet mode, -trace-dir DIR writes one span snapshot and one Chrome
// trace per session.
//
// Link health: -health-out FILE writes the run's link-health snapshot
// (sim-clock time-series plus SLO attainment; "-" for stdout) — feed it
// to vlctop. With -metrics-addr the same snapshot is served at /health
// (JSON) and /health/stream (NDJSON). In fleet mode the per-session
// series merge deterministically.
//
// Cost attribution: -prof-out FILE writes the run's deterministic stage
// profile — per-stage sim-domain cost counters (samples, slots, symbols,
// bytes, scratch growth) keyed by stage × scheme × dimming level × shard
// — as canonical JSON ("-" for stdout); analyze or diff it with vlcprof.
// -prof-folded FILE writes the same profile as folded stacks for flame
// graphs (-prof-metric picks the cost dimension, default samples). In
// fleet mode the per-session profiles merge deterministically. With
// -metrics-addr the profile is served at /prof and /prof/folded, and
// /metrics.om serves the OpenMetrics exposition where histogram
// exemplars ride along.
//
// Structured logs: -log-out FILE writes the run's deterministic log
// snapshot as NDJSON, one span-correlated record per line ("-" for
// stdout); tail, filter and join it with vlclog. -log-level sets the
// minimum severity recorded (default info). With -metrics-addr the same
// snapshot is served at /logs (JSON) and /logs/stream (NDJSON). In fleet
// mode the per-session logs concatenate in config order. A flight bundle
// (see -flight-dir) additionally keeps the log tail leading up to its
// trigger as logs.ndjson.
//
// Fleet watch: with -sessions N > 1, -fleet-watch streams fleet
// aggregation while the sessions run — per-session telemetry deltas fold
// into windowed rollups (-fleet-window sets the sim-clock window width)
// and deterministic worst-sessions tables (worst SER, worst ARQ burn
// rate, slowest ACK p95). With -metrics-addr, /fleet (JSON) and
// /fleet/stream (NDJSON) serve the live view mid-run and keep serving
// the final state after the run; vlctop -fleet renders either. -agg-out
// FILE writes the final snapshot ("-" for stdout). Live or final, the
// aggregate is byte-identical for every -workers value.
//
// Profiling: -pprof-addr HOST:PORT serves /debug/pprof on its own
// address (never on the metrics port); the simulation runs under pprof
// labels (session/stage/scheme/level), so CPU profiles slice by the same
// dimensions as the stage profile. -runtime-metrics appends Go runtime
// gauges (GC pause p99, scheduler latency p99, heap goal) to the
// /metrics exposition at scrape time (they stay out of the canonical
// -metrics-out files).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"smartvlc"
	"smartvlc/internal/stats"
)

func main() {
	schemeName := flag.String("scheme", "amppm", "modulation scheme: amppm, ookct, mppm, vppm")
	level := flag.Float64("level", 0.5, "dimming level (static runs)")
	distance := flag.Float64("distance", 3.0, "link distance in meters")
	angle := flag.Float64("angle", 0, "incidence angle in degrees")
	ambient := flag.Float64("ambient", 8000, "ambient illuminance in lux (static runs)")
	payload := flag.Int("payload", 128, "application payload bytes per frame")
	seconds := flag.Float64("seconds", 2.0, "simulated air time")
	dynamic := flag.Bool("dynamic", false, "run the dynamic blind-pull scenario instead of a static level")
	seed := flag.Uint64("seed", 1, "simulation seed (fleet sessions use seed, seed+1, ...)")
	sessions := flag.Int("sessions", 1, "number of independent sessions to run as a fleet")
	workers := flag.Int("workers", 0, "goroutines for the fleet (0 = GOMAXPROCS)")
	fleetRepeat := flag.Int("fleet-repeat", 1, "run the fleet N times on a persistent session-arena pool and report cold vs warm sessions/sec (outputs come from the final repeat)")
	fleetWatch := flag.Bool("fleet-watch", false, "stream fleet aggregation while the fleet runs: with -metrics-addr, /fleet and /fleet/stream serve live rollups and worst-sessions tables mid-run")
	fleetWindow := flag.Float64("fleet-window", 0.1, "fleet aggregation window width in simulated seconds")
	aggOut := flag.String("agg-out", "", "write the final fleet aggregation snapshot to FILE as canonical JSON (\"-\" for stdout; render with vlctop -fleet)")
	metricsOut := flag.String("metrics-out", "", "write the telemetry snapshot to FILE (\"-\" for stdout; .prom suffix selects Prometheus text format)")
	metricsAddr := flag.String("metrics-addr", "", "serve the snapshot over HTTP at this address after the run (/metrics, /metrics.json, /trace)")
	traceOut := flag.String("trace-out", "", "write the session's frame spans to FILE as a Chrome trace_event JSON (Perfetto-loadable)")
	traceDir := flag.String("trace-dir", "", "fleet mode: write per-session span snapshots and Chrome traces into DIR")
	flightDir := flag.String("flight-dir", "", "arm the anomaly flight recorder, writing diagnostic bundles into DIR")
	healthOut := flag.String("health-out", "", "write the link-health snapshot to FILE (\"-\" for stdout; analyze with vlctop)")
	profOut := flag.String("prof-out", "", "write the stage profile to FILE as canonical JSON (\"-\" for stdout; analyze with vlcprof)")
	profFolded := flag.String("prof-folded", "", "write the stage profile to FILE as folded stacks (flame-graph input)")
	profMetric := flag.String("prof-metric", "samples", "cost dimension for -prof-folded: ops, samples, slots, symbols, bytes, allocs")
	logOut := flag.String("log-out", "", "write the structured log snapshot to FILE as NDJSON (\"-\" for stdout; analyze with vlclog)")
	logLevel := flag.String("log-level", "info", "minimum severity recorded: debug, info, warn, error")
	pprofAddr := flag.String("pprof-addr", "", "serve /debug/pprof on this address (separate from -metrics-addr)")
	runtimeMetrics := flag.Bool("runtime-metrics", false, "append Go runtime gauges to the /metrics exposition (scrape-time only)")
	flag.Parse()

	if *pprofAddr != "" {
		servePprof(*pprofAddr)
	}

	var sch smartvlc.Scheme
	var err error
	switch strings.ToLower(*schemeName) {
	case "amppm":
		sch, err = smartvlc.NewAMPPMScheme(smartvlc.DefaultConstraints())
	case "ookct", "ook-ct":
		sch = smartvlc.NewOOKCT()
	case "mppm":
		sch, err = smartvlc.NewMPPM(20)
	case "vppm":
		sch = smartvlc.NewVPPM()
	default:
		err = fmt.Errorf("unknown scheme %q", *schemeName)
	}
	if err != nil {
		fatal(err)
	}

	cfg := smartvlc.DefaultSessionConfig(sch)
	cfg.Geometry = smartvlc.Aligned(*distance, *angle)
	cfg.FixedLevel = *level
	cfg.AmbientLux = *ambient
	cfg.PayloadBytes = *payload
	cfg.Seed = *seed
	if *dynamic {
		cfg.Trace = smartvlc.BlindPull(50, 450, *seconds)
		cfg.FullLEDLux = 500
		cfg.Stepper = smartvlc.PerceivedStepper
	}
	wantMetrics := *metricsOut != "" || *metricsAddr != ""
	wantSpans := *traceOut != "" || *metricsAddr != ""
	wantHealth := *healthOut != "" || *metricsAddr != ""
	wantProf := *profOut != "" || *profFolded != "" || *metricsAddr != ""
	wantLogs := *logOut != "" || *metricsAddr != "" || *flightDir != ""
	foldMetric, err := parseProfMetric(*profMetric)
	if err != nil {
		fatal(err)
	}
	minLevel, levelOK := smartvlc.ParseLogLevel(*logLevel)
	if !levelOK {
		fatal(fmt.Errorf("unknown log level %q (want debug, info, warn or error)", *logLevel))
	}
	if wantHealth {
		cfg.Health = &smartvlc.HealthConfig{Objectives: smartvlc.DefaultHealthObjectives()}
	}
	if (*fleetWatch || *aggOut != "") && *sessions <= 1 {
		fatal(fmt.Errorf("-fleet-watch and -agg-out aggregate a fleet; run with -sessions N > 1"))
	}

	if *sessions > 1 {
		runFleet(cfg, sch, *sessions, *workers, *fleetRepeat, *seconds, fleetOut{
			wantMetrics:    wantMetrics,
			wantProf:       wantProf,
			wantLogs:       wantLogs,
			logLevel:       minLevel,
			logOut:         *logOut,
			metricsOut:     *metricsOut,
			metricsAddr:    *metricsAddr,
			traceDir:       *traceDir,
			healthOut:      *healthOut,
			profOut:        *profOut,
			profFolded:     *profFolded,
			profMetric:     foldMetric,
			watch:          *fleetWatch,
			window:         *fleetWindow,
			aggOut:         *aggOut,
			runtimeMetrics: *runtimeMetrics,
		})
		return
	}
	if wantMetrics {
		cfg.Telemetry = smartvlc.NewTelemetry()
	}
	if wantProf {
		cfg.Prof = smartvlc.NewProfiler()
	}
	if wantSpans {
		cfg.Spans = smartvlc.NewSpanCollector()
	}
	if wantLogs {
		cfg.Logs = smartvlc.NewLogger(minLevel)
	}
	var flightRec *smartvlc.FlightRecorder
	if *flightDir != "" {
		flightRec, err = smartvlc.NewFlightRecorder(smartvlc.FlightConfig{Dir: *flightDir})
		if err != nil {
			fatal(err)
		}
		cfg.Flight = flightRec
	}

	res, err := smartvlc.RunSession(cfg, *seconds)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("scheme      : %s\n", sch.Name())
	fmt.Printf("geometry    : %.2f m @ %.1f°\n", *distance, *angle)
	if *dynamic {
		fmt.Printf("scenario    : dynamic blind pull over %.0f s\n", *seconds)
	} else {
		fmt.Printf("scenario    : static level %.3f, ambient %.0f lux\n", *level, *ambient)
	}
	fmt.Printf("goodput     : %.1f kbps\n", res.GoodputBps/1000)
	fmt.Printf("frames      : sent=%d ok=%d bad=%d retransmits=%d\n",
		res.FramesSent, res.FramesOK, res.FramesBad, res.Retransmits)
	if res.Health != nil {
		fmt.Printf("health      : %s (%d transitions)\n", res.Health.State, len(res.Health.Transitions))
	}
	if *dynamic {
		fmt.Printf("adaptations : %d brightness steps\n", res.Adjustments)
		fmt.Printf("throughput  : %s\n", stats.Sparkline(res.Throughput.Values()))
		fmt.Printf("ambient     : %s\n", stats.Sparkline(res.Ambient.Values()))
		fmt.Printf("led         : %s\n", stats.Sparkline(res.LED.Values()))
		fmt.Printf("sum         : %s\n", stats.Sparkline(res.Sum.Values()))
		sum := stats.Summarize(res.Sum.Values())
		fmt.Printf("sum stats   : mean=%.3f std=%.3f (constant-illumination check)\n", sum.Mean, sum.Std)
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, res.Spans); err != nil {
			fatal(err)
		}
	}
	if flightRec != nil {
		bundles := flightRec.Bundles()
		fmt.Printf("flight      : %d triggers, %d bundles\n", flightRec.Triggers(), len(bundles))
		for _, b := range bundles {
			fmt.Printf("              %s\n", b)
		}
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, cfg.Telemetry, res.Telemetry); err != nil {
			fatal(err)
		}
	}
	if *healthOut != "" {
		if err := writeHealth(*healthOut, res.Health); err != nil {
			fatal(err)
		}
	}
	if err := writeProf(*profOut, *profFolded, foldMetric, res.Prof); err != nil {
		fatal(err)
	}
	if *logOut != "" {
		if err := writeLogs(*logOut, res.Logs); err != nil {
			fatal(err)
		}
	}
	if *metricsAddr != "" {
		serve(*metricsAddr, serveOpts{
			reg: cfg.Telemetry, snap: res.Telemetry, spans: res.Spans,
			health: res.Health, prof: res.Prof, logs: res.Logs,
			runtimeMetrics: *runtimeMetrics,
		})
	}
}

// parseProfMetric validates a profile cost-dimension name from a flag or
// query parameter.
func parseProfMetric(name string) (smartvlc.ProfMetric, error) {
	for _, m := range []smartvlc.ProfMetric{
		smartvlc.ProfOps, smartvlc.ProfSamples, smartvlc.ProfSlots,
		smartvlc.ProfSymbols, smartvlc.ProfBytes, smartvlc.ProfAllocs,
	} {
		if string(m) == name {
			return m, nil
		}
	}
	return "", fmt.Errorf("unknown profile metric %q (want ops, samples, slots, symbols, bytes or allocs)", name)
}

// writeProf exports a stage profile as canonical JSON (jsonPath) and/or
// folded stacks (foldedPath), "-" meaning stdout for either. An empty
// path skips that format; a nil snapshot (profiler never armed) writes
// an empty profile so downstream tooling sees valid input either way.
func writeProf(jsonPath, foldedPath string, m smartvlc.ProfMetric, snap *smartvlc.ProfSnapshot) error {
	if jsonPath == "" && foldedPath == "" {
		return nil
	}
	if snap == nil {
		snap = &smartvlc.ProfSnapshot{}
	}
	if jsonPath != "" {
		out, err := snap.JSON()
		if err != nil {
			return err
		}
		if jsonPath == "-" {
			if _, err := os.Stdout.Write(out); err != nil {
				return err
			}
		} else if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
			return err
		}
	}
	if foldedPath == "" {
		return nil
	}
	if foldedPath == "-" {
		return snap.WriteFolded(os.Stdout, m)
	}
	f, err := os.Create(foldedPath)
	if err != nil {
		return err
	}
	if err := snap.WriteFolded(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace exports a span snapshot as a Chrome trace_event file.
func writeTrace(path string, snap *smartvlc.SpanSnapshot) error {
	if snap == nil {
		snap = &smartvlc.SpanSnapshot{}
	}
	if path == "-" {
		return snap.WriteChromeTrace(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fleetOut bundles the fleet mode's output destinations.
type fleetOut struct {
	wantMetrics    bool
	wantProf       bool
	wantLogs       bool
	logLevel       smartvlc.LogLevel
	logOut         string
	metricsOut     string
	metricsAddr    string
	traceDir       string
	healthOut      string
	profOut        string
	profFolded     string
	profMetric     smartvlc.ProfMetric
	watch          bool
	window         float64
	aggOut         string
	runtimeMetrics bool
}

// runFleet runs the multi-session mode: n sessions with seeds seed,
// seed+1, ..., each on its own registry when metrics were requested, and
// reports the aggregate plus the wall-clock sessions/sec rate. With
// repeat > 1 the fleet runs that many times against one persistent
// session-arena pool — later repeats rent warm per-worker arenas, so the
// cold/warm rate split isolates the allocation cost of session setup.
// Registries are stateful, so each repeat builds fresh configs; results
// are byte-identical across repeats by the arena contract, and the
// printed aggregates come from the final (warmest) repeat.
func runFleet(base smartvlc.SessionConfig, sch smartvlc.Scheme, n, workers, repeat int, seconds float64, out fleetOut) {
	if repeat < 1 {
		repeat = 1
	}
	wantAgg := out.watch || out.aggOut != ""
	// Registries and aggregators are stateful, so each repeat builds both
	// fresh; the aggregator comes back so the repeat loop can publish it
	// to the live endpoints.
	mkCfgs := func() ([]smartvlc.SessionConfig, *smartvlc.FleetAggregator) {
		var fa *smartvlc.FleetAggregator
		if wantAgg {
			var err error
			fa, err = smartvlc.NewFleetAggregator(smartvlc.FleetAggConfig{WindowSeconds: out.window}, n)
			if err != nil {
				fatal(err)
			}
		}
		cfgs := make([]smartvlc.SessionConfig, n)
		for i := range cfgs {
			cfg := base
			cfg.Seed = base.Seed + uint64(i)
			if out.wantMetrics || wantAgg { // the watch feed streams registry deltas
				cfg.Telemetry = smartvlc.NewTelemetry()
			}
			if out.traceDir != "" {
				cfg.Spans = smartvlc.NewSpanCollector()
			}
			if out.wantProf {
				cfg.Prof = smartvlc.NewProfiler()
			}
			if out.wantLogs {
				cfg.Logs = smartvlc.NewLogger(out.logLevel)
			}
			if fa != nil {
				feed, err := fa.Feed(smartvlc.FleetSessionMeta{
					Index: i, Seed: cfg.Seed, Scheme: sch.Name(), PayloadBytes: cfg.PayloadBytes,
				})
				if err != nil {
					fatal(err)
				}
				cfg.Watch = feed
			}
			cfgs[i] = cfg
		}
		return cfgs, fa
	}

	// Live watch server: /fleet and /fleet/stream go up before the first
	// session starts, answering from whichever repeat's aggregator is
	// current; the remaining report routes join the same mux after the run.
	var liveAgg atomic.Pointer[smartvlc.FleetAggregator]
	var liveMux *http.ServeMux
	if out.watch && out.metricsAddr != "" {
		liveMux = http.NewServeMux()
		addFleetRoutes(liveMux, func() *smartvlc.FleetAggSnapshot {
			if a := liveAgg.Load(); a != nil {
				return a.Snapshot()
			}
			return nil
		})
		ln, err := net.Listen("tcp", out.metricsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fleet watch : serving live on http://%s/fleet and /fleet/stream\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, liveMux); err != nil {
				fatal(err)
			}
		}()
	}

	arenas := smartvlc.NewFleetArenas()
	var fl smartvlc.FleetResult
	var err error
	var coldWall, wall time.Duration
	for r := 0; r < repeat; r++ {
		cfgs, fa := mkCfgs()
		if fa != nil {
			liveAgg.Store(fa)
		}
		start := time.Now()
		fl, err = smartvlc.RunFleetArenas(arenas, cfgs, seconds, workers)
		if err != nil {
			fatal(err)
		}
		wall = time.Since(start)
		if r == 0 {
			coldWall = wall
		}
	}

	var goodput float64
	var sent, ok, bad int
	for _, r := range fl.Results {
		goodput += r.GoodputBps
		sent += r.FramesSent
		ok += r.FramesOK
		bad += r.FramesBad
	}
	fmt.Printf("scheme      : %s\n", sch.Name())
	fmt.Printf("fleet       : %d sessions x %.2f s simulated, %d workers\n", n, seconds, fl.Workers)
	rate := float64(n) / wall.Seconds()
	fmt.Printf("wall clock  : %.3f s (%.2f sessions/sec, %.2f sessions/sec/core)\n",
		wall.Seconds(), rate, rate/float64(fl.Workers))
	if repeat > 1 {
		fmt.Printf("arena warmup: cold %.2f sessions/sec -> warm %.2f sessions/sec over %d repeats\n",
			float64(n)/coldWall.Seconds(), rate, repeat)
	}
	fmt.Printf("goodput     : %.1f kbps mean per session (%.1f kbps aggregate)\n",
		goodput/float64(n)/1000, goodput/1000)
	fmt.Printf("frames      : sent=%d ok=%d bad=%d\n", sent, ok, bad)
	if fl.Health != nil {
		fmt.Printf("health      : %s across %d sessions (%d transitions)\n",
			fl.Health.State, fl.Health.Sessions, len(fl.Health.Transitions))
	}
	if fl.Agg != nil {
		fmt.Printf("fleet agg   : %d windows of %.3f s sealed\n", fl.Agg.SealedWindows, fl.Agg.WindowSeconds)
		if len(fl.Agg.TopSER) > 0 {
			w := fl.Agg.TopSER[0]
			fmt.Printf("worst ser   : session %d (seed %d) %.3g\n", w.Session, w.Seed, w.SER)
		}
		if len(fl.Agg.TopBurn) > 0 {
			w := fl.Agg.TopBurn[0]
			fmt.Printf("worst burn  : session %d (seed %d) %.3f timeouts/frame\n", w.Session, w.Seed, w.BurnRate)
		}
		if len(fl.Agg.TopAck) > 0 {
			w := fl.Agg.TopAck[0]
			fmt.Printf("slowest ack : session %d (seed %d) p95 %.1f ms\n", w.Session, w.Seed, w.AckP95*1000)
		}
	}

	if out.traceDir != "" {
		if err := fl.WriteSessionTraces(out.traceDir); err != nil {
			fatal(err)
		}
		fmt.Printf("traces      : %d sessions exported to %s\n", n, out.traceDir)
	}
	if out.metricsOut != "" {
		if err := writeMetrics(out.metricsOut, nil, fl.Telemetry); err != nil {
			fatal(err)
		}
	}
	if out.healthOut != "" {
		if err := writeHealth(out.healthOut, fl.Health); err != nil {
			fatal(err)
		}
	}
	if err := writeProf(out.profOut, out.profFolded, out.profMetric, fl.Prof); err != nil {
		fatal(err)
	}
	if out.logOut != "" {
		if err := writeLogs(out.logOut, fl.Logs); err != nil {
			fatal(err)
		}
	}
	if out.aggOut != "" {
		if err := writeAgg(out.aggOut, fl.Agg); err != nil {
			fatal(err)
		}
	}
	if out.metricsAddr == "" {
		return
	}
	final := serveOpts{
		snap: fl.Telemetry, health: fl.Health, prof: fl.Prof, logs: fl.Logs,
		runtimeMetrics: out.runtimeMetrics,
	}
	if liveMux != nil {
		// The live mux already owns /fleet and /fleet/stream (still backed
		// by the final repeat's aggregator); add the post-run report routes
		// to it and keep serving.
		addRoutes(liveMux, final)
		fmt.Printf("metrics     : serving on http://%s/metrics (ctrl-c to stop)\n", out.metricsAddr)
		select {}
	}
	if fl.Agg != nil {
		snap := fl.Agg
		final.agg = func() *smartvlc.FleetAggSnapshot { return snap }
	}
	serve(out.metricsAddr, final)
}

// writeAgg exports the fleet aggregation snapshot as canonical JSON
// ("-" for stdout) — vlctop -fleet's input. A nil snapshot writes an
// empty object so downstream tooling sees valid JSON either way.
func writeAgg(path string, snap *smartvlc.FleetAggSnapshot) error {
	out := []byte("{}\n")
	if snap != nil {
		var err error
		out, err = snap.JSON()
		if err != nil {
			return err
		}
	}
	if path == "-" {
		_, err := os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// writeMetrics exports a snapshot: Prometheus exposition when the path
// ends in .prom, canonical JSON otherwise. The registry supplies HELP
// text when available; a nil registry (the merged-fleet case) falls back
// to the snapshot's own exposition.
func writeMetrics(path string, reg *smartvlc.Telemetry, snap *smartvlc.TelemetrySnapshot) error {
	var out []byte
	if strings.HasSuffix(path, ".prom") {
		var sb strings.Builder
		if reg != nil {
			if err := reg.WritePrometheus(&sb); err != nil {
				return err
			}
		} else if err := snap.WritePrometheus(&sb, nil); err != nil {
			return err
		}
		out = []byte(sb.String())
	} else {
		var err error
		out, err = snap.JSON()
		if err != nil {
			return err
		}
	}
	if path == "-" {
		_, err := os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// writeLogs exports a log snapshot as NDJSON ("-" for stdout), the
// format vlclog tail consumes. A nil snapshot (logger never armed)
// writes an empty snapshot's lines — i.e. nothing — so piping stays
// safe either way.
func writeLogs(path string, snap *smartvlc.LogSnapshot) error {
	if snap == nil {
		snap = &smartvlc.LogSnapshot{}
	}
	out, err := snap.NDJSON()
	if err != nil {
		return err
	}
	if path == "-" {
		_, err := os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// writeHealth exports a health snapshot as canonical JSON ("-" for
// stdout). A nil snapshot writes an empty object so downstream tooling
// sees valid JSON either way.
func writeHealth(path string, snap *smartvlc.HealthSnapshot) error {
	out := []byte("{}\n")
	if snap != nil {
		var err error
		out, err = snap.JSON()
		if err != nil {
			return err
		}
	}
	if path == "-" {
		_, err := os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// serve blocks, exposing the finished run's artifacts for scrapes —
// useful for pointing a Prometheus/Grafana dev stack (or vlctop) at a
// simulation.
func serve(addr string, o serveOpts) {
	fmt.Printf("metrics     : serving on http://%s/metrics (ctrl-c to stop)\n", addr)
	if o.health != nil {
		fmt.Printf("health      : http://%s/health and /health/stream\n", addr)
	}
	if o.logs != nil {
		fmt.Printf("logs        : http://%s/logs and /logs/stream\n", addr)
	}
	if o.agg != nil {
		fmt.Printf("fleet       : http://%s/fleet and /fleet/stream\n", addr)
	}
	if err := http.ListenAndServe(addr, buildMux(o)); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smartvlc-sim:", err)
	os.Exit(1)
}
