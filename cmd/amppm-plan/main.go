// Command amppm-plan inspects the AMPPM planning stage: the SER-pruned
// pattern set, the throughput envelope, and the super-symbol selected for
// a requested dimming level.
//
// Usage:
//
//	amppm-plan                     # envelope summary
//	amppm-plan -level 0.37         # selection for one level
//	amppm-plan -vertices           # dump every envelope vertex
//	amppm-plan -serbound 0.001     # tighter pruning
package main

import (
	"flag"
	"fmt"
	"os"

	"smartvlc/internal/amppm"
	"smartvlc/internal/stats"
)

func main() {
	level := flag.Float64("level", -1, "dimming level to plan for (-1 = none)")
	vertices := flag.Bool("vertices", false, "dump all envelope vertices")
	serBound := flag.Float64("serbound", 0, "override the SER bound (0 = default)")
	fth := flag.Float64("fth", 0, "override the flicker threshold in Hz (0 = default 250)")
	flag.Parse()

	cons := amppm.DefaultConstraints()
	if *serBound > 0 {
		cons.SERBound = *serBound
	}
	if *fth > 0 {
		cons.FlickerHz = *fth
	}
	table, err := amppm.NewTable(cons)
	if err != nil {
		fatal(err)
	}

	lo, hi := table.LevelRange()
	fmt.Printf("constraints : tslot=%.1fµs  f_th=%.0fHz  Nmax=%d slots  SER≤%.2g  (P1=%.2g P2=%.2g)\n",
		cons.SlotSeconds*1e6, cons.FlickerHz, cons.NMax(), cons.SERBound, cons.P1, cons.P2)
	fmt.Printf("patterns    : %d valid after pruning\n", len(table.Patterns()))
	fmt.Printf("envelope    : %d vertices spanning levels [%.3f, %.3f]\n", len(table.Vertices()), lo, hi)
	fmt.Printf("resolution  : worst dimming error %.4f over a 500-step sweep\n", table.Resolution(500))
	fmt.Printf("peak rate   : %.4f bits/slot at l=0.5 → %.1f kbps raw\n\n",
		table.EnvelopeRateAt(0.5), table.EnvelopeRateAt(0.5)*cons.TxHz()/1000)

	if *vertices {
		t := stats.Table{Title: "Envelope vertices", Headers: []string{"idx", "pattern", "level", "bits/slot", "SER"}}
		for i, v := range table.Vertices() {
			t.AddRow(i, v.Pattern.String(), v.Level, v.Rate, v.Pattern.SER(cons.P1, cons.P2))
		}
		fmt.Println(t.Render())
	}

	if *level >= 0 {
		s, err := table.Select(*level)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("target level   : %.4f\n", *level)
		fmt.Printf("super-symbol   : %v\n", s)
		fmt.Printf("achieved level : %.4f (error %.5f)\n", s.Level(), s.Level()-*level)
		fmt.Printf("length         : %d slots (%.2f ms, repeats at %.0f Hz ≥ f_th)\n",
			s.Slots(), float64(s.Slots())*cons.SlotSeconds*1000, s.RepetitionHz(cons.SlotSeconds))
		fmt.Printf("data rate      : %d bits/super-symbol = %.4f bits/slot → %.1f kbps raw\n",
			s.Bits(), s.NormalizedRate(), s.Rate(cons.SlotSeconds)/1000)
		fmt.Printf("super-sym SER  : %.3g\n", s.SER(cons.P1, cons.P2))
		d, err := table.Descriptor(s)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("header bytes   : % x (frame Pattern field)\n", d)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "amppm-plan:", err)
	os.Exit(1)
}
