// Command smartvlc-figures regenerates every table and figure of the
// SmartVLC paper's evaluation and prints them as aligned text tables
// (optionally also as CSV files).
//
// Usage:
//
//	smartvlc-figures [-only fig15,fig19] [-seconds 0.5] [-duration 67] [-csv DIR] [-seed 1]
//
// The analytic figures (4, 6, 8, 9, 10, Table 2) are instantaneous; the
// measured ones (15, 16, 17, 19) run the full link simulation and take
// -seconds of simulated air time per data point.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"smartvlc/internal/experiments"
	"smartvlc/internal/mppm"
	"smartvlc/internal/stats"
)

func main() {
	only := flag.String("only", "", "comma-separated subset: fig4,fig4mc,fig6,fig8,fig9,fig10,table2,fig15,fig16,fig17,fig19")
	seconds := flag.Float64("seconds", 0.5, "simulated air time per measured data point")
	duration := flag.Float64("duration", 67, "dynamic scenario duration (paper: 67 s blind pull)")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	svgDir := flag.String("svg", "", "also render line-chart SVGs into this directory")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	writeSVG := func(name string, c stats.Chart) {
		if *svgDir == "" {
			return
		}
		path := filepath.Join(*svgDir, name+".svg")
		if err := os.WriteFile(path, []byte(c.SVG()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  (svg: %s)\n\n", path)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, f := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(f))] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	emit := func(name string, t stats.Table) {
		fmt.Println(t.Render())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("  (csv: %s)\n\n", path)
		}
	}
	opt := experiments.LinkOptions{SecondsPerPoint: *seconds, Seed: *seed}

	if sel("fig4") {
		emit("fig4", experiments.Fig4())
		var series []stats.Series
		for _, n := range []int{10, 30, 50, 80, 120} {
			var s stats.Series
			s.Name = fmt.Sprintf("N=%d", n)
			for l := 0.05; l <= 0.951; l += 0.05 {
				k := int(l*float64(n) + 0.5)
				s.Add(l, mppm.SER(n, k, experiments.PaperP1, experiments.PaperP2))
			}
			series = append(series, s)
		}
		writeSVG("fig4", stats.Chart{
			Title: "Fig. 4 — MPPM SER vs dimming level", XLabel: "dimming level",
			YLabel: "symbol error rate", Series: series,
		})
	}
	if sel("fig4mc") {
		_, t, err := experiments.Fig4MonteCarlo(200000, *seed)
		if err != nil {
			fatal(err)
		}
		emit("fig4mc", t)
	}
	if sel("fig6") {
		_, _, t := experiments.Fig6()
		emit("fig6", t)
	}
	if sel("fig8") {
		_, t := experiments.Fig8(2.5e-3)
		emit("fig8", t)
	}
	if sel("fig9") {
		rows, t := experiments.Fig9()
		emit("fig9", t)
		var env, single stats.Series
		env.Name, single.Name = "AMPPM envelope", "single pattern"
		for _, r := range rows {
			env.Add(r.Level, r.EnvelopeRate)
			if r.SingleRate > 0 {
				single.Add(r.Level, r.SingleRate)
			}
		}
		writeSVG("fig9", stats.Chart{
			Title: "Fig. 9 — envelope vs best single pattern", XLabel: "dimming level",
			YLabel: "normalized rate (bits/slot)", Series: []stats.Series{env, single},
		})
	}
	if sel("fig10") {
		_, t := experiments.Fig10(0.2, 0.8)
		emit("fig10", t)
	}
	if sel("table2") {
		ind, dir := experiments.Table2()
		emit("table2a_indirect", ind)
		emit("table2b_direct", dir)
	}
	if sel("fig15") {
		res, t, err := experiments.Fig15(opt)
		if err != nil {
			fatal(err)
		}
		emit("fig15", t)
		fmt.Printf("AMPPM vs OOK-CT: avg %+.0f%%, max %+.0f%%  (paper: +40%%, up to +170%%)\n",
			res.AvgOverOOKCT*100, res.MaxOverOOKCT*100)
		fmt.Printf("AMPPM vs MPPM:   avg %+.0f%%, max %+.0f%%  (paper: +12%%, up to +30%%)\n\n",
			res.AvgOverMPPM*100, res.MaxOverMPPM*100)
		var a, o, m stats.Series
		a.Name, o.Name, m.Name = "AMPPM", "OOK-CT", "MPPM(N=20)"
		for _, r := range res.Rows {
			a.Add(r.Level, r.AMPPM)
			o.Add(r.Level, r.OOKCT)
			m.Add(r.Level, r.MPPMKbps)
		}
		writeSVG("fig15", stats.Chart{
			Title: "Fig. 15 — throughput vs dimming level (3 m, 128 B)", XLabel: "dimming level",
			YLabel: "throughput (kbps)", Series: []stats.Series{a, o, m},
		})
	}
	if sel("fig16") {
		rows, t, err := experiments.Fig16(opt)
		if err != nil {
			fatal(err)
		}
		emit("fig16", t)
		var series []stats.Series
		for _, level := range []float64{0.18, 0.5, 0.7} {
			var s stats.Series
			s.Name = fmt.Sprintf("l=%.2f", level)
			for _, r := range rows {
				s.Add(r.DistanceM, r.Kbps[level])
			}
			series = append(series, s)
		}
		writeSVG("fig16", stats.Chart{
			Title: "Fig. 16 — throughput vs distance", XLabel: "distance (m)",
			YLabel: "throughput (kbps)", Series: series,
		})
	}
	if sel("fig17") {
		rows, t, err := experiments.Fig17(opt)
		if err != nil {
			fatal(err)
		}
		emit("fig17", t)
		var series []stats.Series
		for _, d := range []float64{1.3, 2.3, 3.3} {
			var s stats.Series
			s.Name = fmt.Sprintf("d=%.1fm", d)
			for _, r := range rows {
				s.Add(r.AngleDeg, r.Kbps[d])
			}
			series = append(series, s)
		}
		writeSVG("fig17", stats.Chart{
			Title: "Fig. 17 — throughput vs incidence angle", XLabel: "incidence angle (deg)",
			YLabel: "throughput (kbps)", Series: series,
		})
	}
	if sel("fig19") {
		res, err := experiments.Fig19(experiments.Fig19Options{Duration: *duration, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		a, b, c := experiments.Fig19Tables(res)
		emit("fig19a", a)
		fmt.Println("throughput:", stats.Sparkline(res.Throughput.Values()))
		emit("fig19b", b)
		emit("fig19c", c)
		fmt.Printf("adaptation adjustments: smartvlc=%d existing=%d (%.0f%% fewer; paper: 50%%)\n",
			res.SmartVLCAdjustments, res.ExistingAdjustments,
			100*(1-float64(res.SmartVLCAdjustments)/float64(res.ExistingAdjustments)))
		tp := res.Throughput
		tp.Name = "goodput (bps)"
		writeSVG("fig19a", stats.Chart{
			Title: "Fig. 19(a) — throughput during blind pull", XLabel: "time (s)",
			YLabel: "throughput (bps)", Series: []stats.Series{tp},
		})
		amb, led, sum := res.Ambient, res.LED, res.Sum
		amb.Name, led.Name, sum.Name = "ambient", "LED", "sum"
		writeSVG("fig19b", stats.Chart{
			Title: "Fig. 19(b) — normalized light intensities", XLabel: "time (s)",
			YLabel: "normalized intensity", Series: []stats.Series{amb, led, sum},
		})
		sv, ex := res.SmartVLCAdjust, res.ExistingAdjust
		sv.Name, ex.Name = "SmartVLC", "existing method"
		writeSVG("fig19c", stats.Chart{
			Title: "Fig. 19(c) — cumulative adaptation adjustments", XLabel: "time (s)",
			YLabel: "adjustments", Series: []stats.Series{ex, sv},
		})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smartvlc-figures:", err)
	os.Exit(1)
}
