// Command vlctrace analyzes SmartVLC span traces and flight-recorder
// bundles: per-stage latency breakdowns, critical paths, retransmit-chain
// summaries and worst-frame rankings — the post-mortem companion to the
// Chrome traces smartvlc-sim exports.
//
// Usage:
//
//	vlctrace trace file.trace.json     analyze a Chrome trace_event file
//	vlctrace spans file.spans.json     analyze a canonical span snapshot
//	vlctrace bundle DIR                summarize and replay a flight bundle
//
// Flags:
//
//	-top N    rows in the slowest/worst-frame tables (default 5)
//	-root S   frame-root span name (default "frame"; streams use "chunk")
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"smartvlc/internal/telemetry/flight"
	"smartvlc/internal/telemetry/span"
)

func main() {
	top := flag.Int("top", 5, "rows in the slowest/worst-frame tables")
	root := flag.String("root", "frame", "frame-root span name (\"frame\" or \"chunk\")")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vlctrace [flags] trace|spans|bundle PATH\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	switch flag.Arg(0) {
	case "trace":
		err = analyzeTrace(flag.Arg(1), *root, *top)
	case "spans":
		err = analyzeSpans(flag.Arg(1), *root, *top)
	case "bundle":
		err = analyzeBundle(flag.Arg(1), *top)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vlctrace: %v\n", err)
		os.Exit(1)
	}
}

func analyzeTrace(path, root string, top int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap, err := span.ReadChromeTrace(f)
	if err != nil {
		return err
	}
	report(snap, root, top)
	return nil
}

func analyzeSpans(path, root string, top int) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap span.Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	report(&snap, root, top)
	return nil
}

// report prints the standard analysis of one span snapshot.
func report(snap *span.Snapshot, rootName string, top int) {
	fmt.Printf("spans: %d buffered, %d total, %d dropped\n\n", len(snap.Spans), snap.Total, snap.Dropped)

	fmt.Println("per-stage latency:")
	fmt.Printf("  %-16s %8s %12s %12s %12s %7s\n", "stage", "count", "total", "mean", "max", "errors")
	for _, st := range span.StageBreakdown(snap.Spans) {
		fmt.Printf("  %-16s %8d %12s %12s %12s %7d\n",
			st.Name, st.Count, dur(st.Total), dur(st.Mean), dur(st.Max), st.Errors)
	}

	tree := span.NewTree(snap.Spans)
	frames := tree.FrameRoots(rootName)
	fmt.Printf("\n%s roots: %d\n", rootName, len(frames))
	if len(frames) == 0 {
		return
	}

	fmt.Printf("\ncritical path of first %s (id %d, seq %d):\n", rootName, frames[0].ID, frames[0].Seq)
	for _, s := range tree.CriticalPath(frames[0].ID) {
		fmt.Printf("  %-16s %12s  [%s → %s]\n", s.Name, dur(s.Duration()), dur(s.Start), dur(s.End))
	}

	chains := tree.RetxChains(rootName)
	fmt.Printf("\nretransmit chains: %d\n", len(chains))
	for i, c := range chains {
		if i >= top {
			fmt.Printf("  … %d more\n", len(chains)-top)
			break
		}
		parts := make([]string, len(c.Roots))
		for j, r := range c.Roots {
			parts[j] = fmt.Sprintf("id %d @ %s", r.ID, dur(r.Start))
		}
		fmt.Printf("  seq %d: %d transmissions (%s)\n", c.Seq, len(c.Roots), strings.Join(parts, " → "))
	}

	fmt.Printf("\ntop %d slowest %ss:\n", top, rootName)
	for _, s := range span.TopSlowest(frames, top) {
		fmt.Printf("  id %-6d seq %-6d %12s  %s\n", s.ID, s.Seq, dur(s.Duration()), attrSummary(s))
	}

	worst := tree.WorstFrames(rootName, top)
	if len(worst) > 0 {
		fmt.Printf("\nworst %ss (decode failures in subtree):\n", rootName)
		for _, s := range worst {
			fmt.Printf("  id %-6d seq %-6d %12s  %s\n", s.ID, s.Seq, dur(s.Duration()), attrSummary(s))
		}
	}
}

func analyzeBundle(dir string, top int) error {
	b, err := flight.ReadBundle(dir)
	if err != nil {
		return err
	}
	m := b.Meta
	fmt.Printf("bundle: %s\n", dir)
	fmt.Printf("trigger: %s (class %q) at seq %d, t=%s\n", m.Reason, m.Class, m.Seq, dur(m.At))
	fmt.Printf("link: scheme %s, level %g, threshold %d, seed %d, payload %dB, tslot %s\n",
		m.Scheme, m.Level, m.Threshold, m.Seed, m.PayloadBytes, dur(m.TSlotSeconds))
	fmt.Printf("captures: %d frames ringed\n", len(b.Captures))
	for _, c := range b.Captures {
		fmt.Printf("  seq %-6d rx %d  t=%-12s level %-8g thr %-5d %6d slots %7d samples\n",
			c.Seq, c.Rx, dur(c.Start), c.Level, c.Threshold, len(c.Slots), len(c.Samples))
	}

	class, err := b.Replay()
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	verdict := "MISMATCH"
	if class == m.Class {
		verdict = "match"
	}
	fmt.Printf("\nreplay of triggering frame: class %q (recorded %q) — %s\n", class, m.Class, verdict)

	if b.Spans != nil && len(b.Spans.Spans) > 0 {
		fmt.Println()
		report(b.Spans, "frame", top)
	}
	return nil
}

// dur renders seconds with a sensible unit for link-scale times.
func dur(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-3 && s > -1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1 && s > -1:
		return fmt.Sprintf("%.3fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// attrSummary renders a span's attributes compactly.
func attrSummary(s span.Span) string {
	if len(s.Attrs) == 0 {
		return ""
	}
	parts := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		parts[i] = a.Key + "=" + a.Value
	}
	return strings.Join(parts, " ")
}
