// Command vlctrace analyzes SmartVLC span traces and flight-recorder
// bundles: per-stage latency breakdowns (with p50/p95/p99), critical
// paths, retransmit-chain summaries and worst-frame rankings — the
// post-mortem companion to the Chrome traces smartvlc-sim exports.
//
// The rendering lives in internal/telemetry/span/analyze (tested against
// golden outputs); this command only loads inputs and picks the mode.
//
// Usage:
//
//	vlctrace trace file.trace.json     analyze a Chrome trace_event file
//	vlctrace spans file.spans.json     analyze a canonical span snapshot
//	vlctrace bundle DIR                summarize and replay a flight bundle
//	vlctrace exemplars metrics.json    histogram-exemplar drill-down: the
//	                                   frames (seq, root span ID) behind
//	                                   each latency bucket's tail
//
// Flags:
//
//	-top N    rows in the slowest/worst-frame tables (default 5)
//	-root S   frame-root span name (default "frame"; streams use "chunk")
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"smartvlc/internal/telemetry"
	"smartvlc/internal/telemetry/flight"
	"smartvlc/internal/telemetry/span"
	"smartvlc/internal/telemetry/span/analyze"
)

func main() {
	top := flag.Int("top", 5, "rows in the slowest/worst-frame tables")
	root := flag.String("root", "frame", "frame-root span name (\"frame\" or \"chunk\")")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vlctrace [flags] trace|spans|bundle|exemplars PATH\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	opt := analyze.Options{Root: *root, Top: *top}
	var err error
	switch flag.Arg(0) {
	case "trace":
		err = analyzeTrace(flag.Arg(1), opt)
	case "spans":
		err = analyzeSpans(flag.Arg(1), opt)
	case "bundle":
		err = analyzeBundle(flag.Arg(1), opt)
	case "exemplars":
		err = analyzeExemplars(flag.Arg(1))
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vlctrace: %v\n", err)
		os.Exit(1)
	}
}

func analyzeTrace(path string, opt analyze.Options) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap, err := span.ReadChromeTrace(f)
	if err != nil {
		return err
	}
	analyze.Report(os.Stdout, snap, opt)
	return nil
}

func analyzeSpans(path string, opt analyze.Options) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap span.Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	analyze.Report(os.Stdout, &snap, opt)
	return nil
}

// analyzeExemplars renders the histogram-exemplar drill-down of a
// telemetry snapshot: each exemplar's span ID feeds straight back into
// the span tables the other modes print.
func analyzeExemplars(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	snap, err := telemetry.ParseSnapshot(b)
	if err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	return snap.WriteExemplars(os.Stdout)
}

func analyzeBundle(dir string, opt analyze.Options) error {
	b, err := flight.ReadBundle(dir)
	if err != nil {
		return err
	}
	analyze.ReportBundle(os.Stdout, dir, b)
	class, err := b.Replay()
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	analyze.ReportReplay(os.Stdout, class, b.Meta.Class)
	if b.Spans != nil && len(b.Spans.Spans) > 0 {
		fmt.Println()
		analyze.Report(os.Stdout, b.Spans, analyze.Options{Root: "frame", Top: opt.Top})
	}
	return nil
}
