package main

import (
	"fmt"
	"io"
	"math"
	"sort"

	"smartvlc"
)

type options struct {
	top   int // worst-window rows
	width int // sparkline cells
}

func (o options) withDefaults() options {
	if o.top <= 0 {
		o.top = 5
	}
	if o.width <= 0 {
		o.width = 60
	}
	return o
}

// render writes the full operator view. Output is deterministic given the
// snapshot: every number comes from the sim clock and the canonical
// point ordering, so the view is testable against golden files.
func render(w io.Writer, s *smartvlc.HealthSnapshot, opt options) {
	opt = opt.withDefaults()

	// Partial flush buckets (shorter than the grid width) would distort
	// every per-bucket rate next to their sealed peers, so the view keeps
	// only sealed points; the SLO evaluator made the same choice.
	span := 0.0
	var finest []smartvlc.HealthPoint
	if len(s.Series) > 0 {
		for _, p := range s.Series[0].Points {
			if !p.Partial {
				finest = append(finest, p)
			}
		}
	}
	if n := len(finest); n > 0 {
		span = finest[n-1].End - finest[0].Start
	}
	fmt.Fprintf(w, "link health: %s", s.State)
	if s.Link != "" {
		fmt.Fprintf(w, "  link=%s", s.Link)
	}
	fmt.Fprintf(w, "  sessions=%d", s.Sessions)
	if s.Skipped > 0 {
		fmt.Fprintf(w, "  skipped=%d", s.Skipped)
	}
	fmt.Fprintf(w, "\ngrid: tslot=%s bucket=%d slots (%s), %d resolutions ×%d, %s observed\n",
		dur(s.TSlotSeconds), s.BucketSlots, dur(float64(s.BucketSlots)*s.TSlotSeconds),
		len(s.Series), s.Factor, dur(span))

	renderObjectives(w, s)
	renderTimelines(w, finest, opt)
	renderLevels(w, finest)
	renderTransitions(w, s)
	renderWorst(w, finest, opt)
}

// renderObjectives prints the SLO attainment table: spec, final state,
// per-bucket attainment and the worst burn rate seen.
func renderObjectives(w io.Writer, s *smartvlc.HealthSnapshot) {
	if len(s.Objectives) == 0 {
		return
	}
	fmt.Fprintf(w, "\nSLO attainment:\n")
	fmt.Fprintf(w, "  %-10s %-10s %-5s %10s  %-8s %11s %12s\n",
		"objective", "metric", "kind", "target", "final", "attainment", "worst burn")
	for _, o := range s.Objectives {
		att := "—"
		if o.EvalBuckets > 0 {
			att = fmt.Sprintf("%d/%d %3.0f%%", o.GoodBuckets, o.EvalBuckets,
				100*float64(o.GoodBuckets)/float64(o.EvalBuckets))
		}
		burn := "—"
		if o.WorstBurn > 0 {
			burn = fmt.Sprintf("%.2f @ %s", o.WorstBurn, dur(o.WorstAt))
		}
		fmt.Fprintf(w, "  %-10s %-10s %-5s %10.4g  %-8s %11s %12s\n",
			o.Name, o.Metric, o.Kind, o.Target, o.Final, att, burn)
	}
}

// renderTimelines draws sparkline timelines of goodput, frame loss and
// dimming level over the finest series, downsampled to the view width.
func renderTimelines(w io.Writer, pts []smartvlc.HealthPoint, opt options) {
	if len(pts) == 0 {
		return
	}
	fmt.Fprintf(w, "\ntimeline (%s → %s, %d buckets):\n",
		dur(pts[0].Start), dur(pts[len(pts)-1].End), len(pts))
	rows := []struct {
		name string
		get  func(p smartvlc.HealthPoint) float64
	}{
		{"goodput b/slot", func(p smartvlc.HealthPoint) float64 { return p.Goodput }},
		{"frame loss", func(p smartvlc.HealthPoint) float64 { return p.FrameLoss }},
		{"dim level", func(p smartvlc.HealthPoint) float64 { return p.MeanLevel }},
	}
	for _, r := range rows {
		vals := downsample(pts, r.get, opt.width)
		lo, hi := bounds(vals)
		fmt.Fprintf(w, "  %-15s %s  [%.3g, %.3g]\n", r.name, sparkline(vals, lo, hi), lo, hi)
	}
}

// renderLevels aggregates the finest buckets into dimming-level bins of
// 0.1 — the paper's tent envelope makes the healthy goodput a function of
// the level, so per-level rows are the only fair comparison.
func renderLevels(w io.Writer, pts []smartvlc.HealthPoint) {
	type bin struct {
		n                          int
		goodput, target, loss, ser float64
		met                        int
	}
	bins := map[int]*bin{}
	for _, p := range pts {
		if p.LevelN == 0 {
			continue
		}
		k := int(math.Floor(p.MeanLevel*10 + 1e-9))
		b := bins[k]
		if b == nil {
			b = &bin{}
			bins[k] = b
		}
		b.n++
		b.goodput += p.Goodput
		b.target += p.GoodputTarget
		b.loss += p.FrameLoss
		b.ser += p.SER
		if p.GoodputTarget == 0 || p.Goodput >= p.GoodputTarget {
			b.met++
		}
	}
	if len(bins) == 0 {
		return
	}
	keys := make([]int, 0, len(bins))
	for k := range bins {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Fprintf(w, "\nby dimming level:\n")
	fmt.Fprintf(w, "  %-9s %8s %15s %15s %10s %10s %9s\n",
		"level", "buckets", "goodput b/slot", "target b/slot", "loss", "ser", "met")
	for _, k := range keys {
		b := bins[k]
		n := float64(b.n)
		fmt.Fprintf(w, "  %.1f–%.1f   %8d %15.3f %15.3f %10.4f %10.2e %8.0f%%\n",
			float64(k)/10, float64(k+1)/10, b.n, b.goodput/n, b.target/n,
			b.loss/n, b.ser/n, 100*float64(b.met)/n)
	}
}

// renderTransitions prints the alert log in firing order.
func renderTransitions(w io.Writer, s *smartvlc.HealthSnapshot) {
	fmt.Fprintf(w, "\ntransitions: %d\n", len(s.Transitions))
	for _, t := range s.Transitions {
		link := ""
		if t.Link != "" {
			link = " [" + t.Link + "]"
		}
		fmt.Fprintf(w, "  %-10s %s%s %s → %s  burn fast=%.2f slow=%.2f  (%s=%.4g vs %.4g)\n",
			dur(t.At), t.Objective, link, t.From, t.To, t.BurnFast, t.BurnSlow,
			t.Objective, t.Value, t.Target)
	}
}

// renderWorst drills into the worst finest buckets, ranked by frame loss
// then symbol error rate — the windows an operator replays first.
func renderWorst(w io.Writer, pts []smartvlc.HealthPoint, opt options) {
	ranked := make([]smartvlc.HealthPoint, 0, len(pts))
	for _, p := range pts {
		if p.FramesOK+p.FramesBad > 0 {
			ranked = append(ranked, p)
		}
	}
	if len(ranked) == 0 {
		return
	}
	sort.SliceStable(ranked, func(a, b int) bool {
		if ranked[a].FrameLoss != ranked[b].FrameLoss {
			return ranked[a].FrameLoss > ranked[b].FrameLoss
		}
		if ranked[a].SER != ranked[b].SER {
			return ranked[a].SER > ranked[b].SER
		}
		return ranked[a].Index < ranked[b].Index
	})
	if len(ranked) > opt.top {
		ranked = ranked[:opt.top]
	}
	fmt.Fprintf(w, "\nworst %d windows (by frame loss, then SER):\n", len(ranked))
	fmt.Fprintf(w, "  %-7s %-22s %6s %10s %10s %8s %7s %10s\n",
		"bucket", "window", "level", "loss", "ser", "goodput", "retx", "ack p95")
	for _, p := range ranked {
		ack := "—"
		if p.AckCount > 0 {
			ack = dur(p.AckP95)
		}
		fmt.Fprintf(w, "  #%-6d %-22s %6.2f %10.4f %10.2e %8.3f %7d %10s\n",
			p.Index, dur(p.Start)+" → "+dur(p.End), p.MeanLevel,
			p.FrameLoss, p.SER, p.Goodput, p.FramesRetx, ack)
	}
}

// downsample reduces the point series to width cells by averaging equal
// index ranges, so long runs still fit one terminal row.
func downsample[P any](pts []P, get func(P) float64, width int) []float64 {
	if len(pts) <= width {
		out := make([]float64, len(pts))
		for i, p := range pts {
			out[i] = get(p)
		}
		return out
	}
	out := make([]float64, width)
	for c := 0; c < width; c++ {
		lo, hi := c*len(pts)/width, (c+1)*len(pts)/width
		if hi == lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, p := range pts[lo:hi] {
			sum += get(p)
		}
		out[c] = sum / float64(hi-lo)
	}
	return out
}

func bounds(vals []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if lo > hi {
		return 0, 0
	}
	return lo, hi
}

var sparks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the values as one row of block glyphs, scaled to
// [lo, hi]. A flat series renders at the lowest glyph.
func sparkline(vals []float64, lo, hi float64) string {
	out := make([]rune, len(vals))
	for i, v := range vals {
		k := 0
		if hi > lo {
			k = int((v - lo) / (hi - lo) * float64(len(sparks)-1))
			if k < 0 {
				k = 0
			}
			if k >= len(sparks) {
				k = len(sparks) - 1
			}
		}
		out[i] = sparks[k]
	}
	return string(out)
}

// dur renders seconds with a link-scale unit.
func dur(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-3 && s > -1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1 && s > -1:
		return fmt.Sprintf("%.3fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}
