package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"smartvlc"
)

// fleetFixture builds a small aggregation snapshot by hand: two sealed
// windows plus a partial one, an eviction at resolution 0, and ranked
// worst-sessions tables — content for every section of the fleet view.
func fleetFixture() *smartvlc.FleetAggSnapshot {
	pt := func(i int64, tx, errs int64, goodput float64, partial bool) smartvlc.FleetAggPoint {
		return smartvlc.FleetAggPoint{
			Index: i, Start: float64(i) * 0.05, End: float64(i+1) * 0.05,
			Partial: partial, Sessions: 3,
			FramesTx: tx, FramesOK: tx, SymbolErrors: errs, Symbols: tx * 1024,
			DeliveredBytes: int64(goodput * 0.05 / 8),
			SER:            float64(errs) / float64(tx*1024),
			GoodputBps:     goodput, MeanLevel: 0.5, AckP95: 0.012,
		}
	}
	st := func(idx int, seed uint64, ser, burn, ack, goodput float64, done bool) smartvlc.FleetSessionStat {
		return smartvlc.FleetSessionStat{
			Session: idx, Seed: seed, Scheme: "AMPPM", Windows: 3, Done: done,
			FramesTx: 30, FramesOK: 29, SymbolErrors: int64(ser * 29 * 1024), Symbols: 29 * 1024,
			SER: ser, BurnRate: burn, AckP95: ack, GoodputBps: goodput,
		}
	}
	return &smartvlc.FleetAggSnapshot{
		WindowSeconds: 0.05, Factor: 10, Sessions: 3, Done: 2, SealedWindows: 3,
		Series: []smartvlc.FleetAggSeries{{
			Resolution: 0, WindowSeconds: 0.05, Dropped: 1,
			Points: []smartvlc.FleetAggPoint{
				pt(1, 30, 12, 96000, false),
				pt(2, 28, 40, 88000, false),
				pt(3, 5, 2, 14000, true),
			},
		}},
		TopSER: []smartvlc.FleetSessionStat{
			st(2, 3, 2.1e-3, 0.1, 0.015, 88000, true),
			st(0, 1, 4.0e-4, 0.0, 0.011, 97000, true),
		},
		TopBurn: []smartvlc.FleetSessionStat{
			st(1, 2, 1.0e-3, 0.25, 0.013, 91000, false),
		},
		TopAck: []smartvlc.FleetSessionStat{
			st(2, 3, 2.1e-3, 0.1, 0.015, 88000, true),
		},
	}
}

func TestRenderFleetGolden(t *testing.T) {
	var buf bytes.Buffer
	renderFleet(&buf, fleetFixture(), options{top: 3, width: 4})
	got := buf.Bytes()
	path := filepath.Join("testdata", "fleet.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("fleet render drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRenderFleetSections spot-checks content without pinning layout:
// the header counts, the partial-window exclusion (3 points, 2 sealed →
// a 2-window timeline), the eviction note and every worst table.
func TestRenderFleetSections(t *testing.T) {
	var buf bytes.Buffer
	renderFleet(&buf, fleetFixture(), options{})
	out := buf.String()
	for _, want := range []string{
		"fleet: 3 sessions (2 done), 3 windows",
		"2 windows):", // partial point excluded from the timeline
		"1 oldest points evicted",
		"worst sessions by symbol error rate",
		"worst sessions by ARQ burn rate",
		"slowest sessions by ACK p95",
		"2.10e-03",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "2.10e-03") > strings.Index(out, "4.00e-04") {
		t.Error("worst-SER table not worst-first")
	}
}

// TestRenderFleetEmpty must not panic on an empty snapshot.
func TestRenderFleetEmpty(t *testing.T) {
	var buf bytes.Buffer
	renderFleet(&buf, &smartvlc.FleetAggSnapshot{}, options{})
	if !strings.Contains(buf.String(), "fleet: 0 sessions") {
		t.Fatalf("header missing: %q", buf.String())
	}
}

// TestFetchRetryTransient pins the satellite behavior: transient 503s
// (a /fleet endpoint before aggregation starts) are retried with backoff
// until the server answers.
func TestFetchRetryTransient(t *testing.T) {
	oldBackoff := fetchBackoff
	fetchBackoff = time.Millisecond
	defer func() { fetchBackoff = oldBackoff }()

	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "fleet aggregation not started", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("{}"))
	}))
	defer srv.Close()

	r, err := fetchRetry(srv.URL)
	if err != nil {
		t.Fatalf("fetchRetry gave up on transient errors: %v", err)
	}
	r.Close()
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (two 503s then success)", got)
	}
}

// TestFetchRetryPermanent: 4xx responses are permanent — one request,
// immediate error.
func TestFetchRetryPermanent(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.NotFound(w, nil)
	}))
	defer srv.Close()

	if _, err := fetchRetry(srv.URL); err == nil {
		t.Fatal("404 did not fail")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests for a 404, want 1", got)
	}
}

// TestFetchRetryExhausted: persistent connection failure fails after the
// bounded attempt budget, not forever.
func TestFetchRetryExhausted(t *testing.T) {
	oldBackoff := fetchBackoff
	fetchBackoff = time.Millisecond
	defer func() { fetchBackoff = oldBackoff }()

	srv := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	srv.Close() // nothing listens here anymore

	start := time.Now()
	if _, err := fetchRetry(srv.URL); err == nil {
		t.Fatal("dead server did not fail")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry loop not bounded")
	}
}
