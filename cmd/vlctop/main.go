// Command vlctop is the operator's view of a SmartVLC link-health
// snapshot: SLO attainment tables, sim-clock metric timelines binned by
// dimming level, the alert transition log and a worst-window drill-down.
// It is the reading companion to smartvlc-sim's -health-out files and
// /health endpoint.
//
// Usage:
//
//	vlctop health.json                  read a -health-out file
//	vlctop -                            read the snapshot from stdin
//	vlctop http://localhost:9090/health scrape a serving simulation
//
// Flags:
//
//	-top N          rows in the worst-window table (default 5)
//	-width N        sparkline width in cells (default 60)
//	-exemplar SRC   append the histogram-exemplar drill-down from a
//	                telemetry snapshot (a -metrics-out file, "-", or a
//	                /metrics.json URL): the frames behind each latency
//	                bucket's tail, with span IDs for vlctrace
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"smartvlc"
)

func main() {
	top := flag.Int("top", 5, "rows in the worst-window table")
	width := flag.Int("width", 60, "sparkline width in cells")
	exemplar := flag.String("exemplar", "", "telemetry snapshot (FILE|URL|-) for the histogram-exemplar drill-down")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vlctop [flags] FILE|URL|-\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	snap, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "vlctop: %v\n", err)
		os.Exit(1)
	}
	render(os.Stdout, snap, options{top: *top, width: *width})
	if *exemplar != "" {
		if err := renderExemplars(os.Stdout, *exemplar); err != nil {
			fmt.Fprintf(os.Stderr, "vlctop: %v\n", err)
			os.Exit(1)
		}
	}
}

// renderExemplars appends the exemplar drill-down section from a
// telemetry snapshot: the concrete frames (seq, root span ID) behind the
// tail buckets of each latency histogram — the hand-off point from the
// SLO tables above to vlctrace.
func renderExemplars(w io.Writer, src string) error {
	r, err := open(src)
	if err != nil {
		return err
	}
	defer r.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	snap, err := smartvlc.ParseTelemetrySnapshot(b)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nEXEMPLARS  worst frames per histogram bucket (span -> vlctrace)\n")
	return snap.WriteExemplars(w)
}

// load reads a health snapshot from a file path, "-" (stdin) or an
// http(s) URL.
func load(src string) (*smartvlc.HealthSnapshot, error) {
	r, err := open(src)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return smartvlc.ReadHealthSnapshot(r)
}

// open resolves a snapshot source: "-" (stdin), an http(s) URL or a file
// path.
func open(src string) (io.ReadCloser, error) {
	switch {
	case src == "-":
		return os.Stdin, nil
	case strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://"):
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("GET %s: %s", src, resp.Status)
		}
		return resp.Body, nil
	default:
		return os.Open(src)
	}
}
