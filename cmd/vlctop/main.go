// Command vlctop is the operator's view of a SmartVLC link-health
// snapshot: SLO attainment tables, sim-clock metric timelines binned by
// dimming level, the alert transition log and a worst-window drill-down.
// It is the reading companion to smartvlc-sim's -health-out files and
// /health endpoint.
//
// Usage:
//
//	vlctop health.json                  read a -health-out file
//	vlctop -                            read the snapshot from stdin
//	vlctop http://localhost:9090/health scrape a serving simulation
//	vlctop -fleet agg.json              render a fleet aggregation
//	vlctop -fleet -poll 2 http://localhost:9090/fleet
//	                                    watch a running fleet live
//
// Flags:
//
//	-top N          rows in the worst-window/worst-session tables (default 5)
//	-width N        sparkline width in cells (default 60)
//	-fleet          the source is a streaming fleet aggregation snapshot
//	                (smartvlc-sim -agg-out or /fleet): render fleet-wide
//	                rollup timelines and the worst-sessions tables
//	-poll SECONDS   fleet mode with a URL source: re-fetch and re-render
//	                every SECONDS, watching the fleet live (0 = once)
//	-exemplar SRC   append the histogram-exemplar drill-down from a
//	                telemetry snapshot (a -metrics-out file, "-", or a
//	                /metrics.json URL): the frames behind each latency
//	                bucket's tail, with span IDs for vlctrace
//
// URL fetches retry transient failures (connection errors, 5xx) with
// bounded exponential backoff, so vlctop can attach to a long-lived
// /fleet endpoint before or between fleet repeats without dying.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"smartvlc"
)

func main() {
	top := flag.Int("top", 5, "rows in the worst-window and worst-session tables")
	width := flag.Int("width", 60, "sparkline width in cells")
	fleet := flag.Bool("fleet", false, "render a streaming fleet aggregation snapshot (smartvlc-sim -agg-out or /fleet)")
	poll := flag.Float64("poll", 0, "fleet mode with a URL: re-fetch and re-render every SECONDS (0 = once)")
	exemplar := flag.String("exemplar", "", "telemetry snapshot (FILE|URL|-) for the histogram-exemplar drill-down")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vlctop [flags] FILE|URL|-\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src := flag.Arg(0)
	opt := options{top: *top, width: *width}
	if *fleet {
		if err := runFleetMode(src, opt, *poll); err != nil {
			fmt.Fprintf(os.Stderr, "vlctop: %v\n", err)
			os.Exit(1)
		}
		return
	}
	snap, err := load(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vlctop: %v\n", err)
		os.Exit(1)
	}
	render(os.Stdout, snap, opt)
	if *exemplar != "" {
		if err := renderExemplars(os.Stdout, *exemplar); err != nil {
			fmt.Fprintf(os.Stderr, "vlctop: %v\n", err)
			os.Exit(1)
		}
	}
}

// runFleetMode renders a fleet aggregation snapshot once, or — with a
// positive poll interval and a URL source — re-fetches and re-renders
// until interrupted, the terminal fleet-watch loop.
func runFleetMode(src string, opt options, poll float64) error {
	isURL := strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://")
	if poll > 0 && !isURL {
		return fmt.Errorf("-poll needs a live URL source, got %q", src)
	}
	for {
		r, err := open(src)
		if err != nil {
			return err
		}
		snap, err := smartvlc.ReadFleetAggSnapshot(r)
		r.Close()
		if err != nil {
			return err
		}
		renderFleet(os.Stdout, snap, opt)
		if poll <= 0 {
			return nil
		}
		fmt.Println()
		time.Sleep(time.Duration(poll * float64(time.Second)))
	}
}

// renderExemplars appends the exemplar drill-down section from a
// telemetry snapshot: the concrete frames (seq, root span ID) behind the
// tail buckets of each latency histogram — the hand-off point from the
// SLO tables above to vlctrace.
func renderExemplars(w io.Writer, src string) error {
	r, err := open(src)
	if err != nil {
		return err
	}
	defer r.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	snap, err := smartvlc.ParseTelemetrySnapshot(b)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nEXEMPLARS  worst frames per histogram bucket (span -> vlctrace)\n")
	return snap.WriteExemplars(w)
}

// load reads a health snapshot from a file path, "-" (stdin) or an
// http(s) URL.
func load(src string) (*smartvlc.HealthSnapshot, error) {
	r, err := open(src)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return smartvlc.ReadHealthSnapshot(r)
}

// open resolves a snapshot source: "-" (stdin), an http(s) URL or a file
// path.
func open(src string) (io.ReadCloser, error) {
	switch {
	case src == "-":
		return os.Stdin, nil
	case strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://"):
		return fetchRetry(src)
	default:
		return os.Open(src)
	}
}

// fetchAttempts and fetchBackoff bound fetchRetry; package variables so
// tests can shrink the waits.
var (
	fetchAttempts = 5
	fetchBackoff  = 100 * time.Millisecond
)

// fetchRetry GETs src, retrying transient failures — connection errors
// and 5xx responses — with bounded exponential backoff. A long-lived
// /fleet endpoint answers 503 before aggregation starts and may refuse
// connections while the server comes up; dying on the first such blip
// would make watching a live fleet a race. Client errors (4xx) are
// permanent and fail immediately.
func fetchRetry(src string) (io.ReadCloser, error) {
	backoff := fetchBackoff
	var lastErr error
	for attempt := 0; attempt < fetchAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		resp, err := http.Get(src)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusOK {
			return resp.Body, nil
		}
		resp.Body.Close()
		lastErr = fmt.Errorf("GET %s: %s", src, resp.Status)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return nil, lastErr
		}
	}
	return nil, fmt.Errorf("giving up after %d attempts: %w", fetchAttempts, lastErr)
}
