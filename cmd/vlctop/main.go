// Command vlctop is the operator's view of a SmartVLC link-health
// snapshot: SLO attainment tables, sim-clock metric timelines binned by
// dimming level, the alert transition log and a worst-window drill-down.
// It is the reading companion to smartvlc-sim's -health-out files and
// /health endpoint.
//
// Usage:
//
//	vlctop health.json                  read a -health-out file
//	vlctop -                            read the snapshot from stdin
//	vlctop http://localhost:9090/health scrape a serving simulation
//
// Flags:
//
//	-top N    rows in the worst-window table (default 5)
//	-width N  sparkline width in cells (default 60)
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"smartvlc"
)

func main() {
	top := flag.Int("top", 5, "rows in the worst-window table")
	width := flag.Int("width", 60, "sparkline width in cells")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vlctop [flags] FILE|URL|-\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	snap, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "vlctop: %v\n", err)
		os.Exit(1)
	}
	render(os.Stdout, snap, options{top: *top, width: *width})
}

// load reads a health snapshot from a file path, "-" (stdin) or an
// http(s) URL.
func load(src string) (*smartvlc.HealthSnapshot, error) {
	var r io.ReadCloser
	switch {
	case src == "-":
		r = os.Stdin
	case strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://"):
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("GET %s: %s", src, resp.Status)
		}
		r = resp.Body
	default:
		f, err := os.Open(src)
		if err != nil {
			return nil, err
		}
		r = f
	}
	defer r.Close()
	return smartvlc.ReadHealthSnapshot(r)
}
