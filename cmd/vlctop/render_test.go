package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smartvlc"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixture builds a degrading-link snapshot by hand: two dimming-level
// bins, an ok→warning→critical escalation and one lossy bucket, so every
// report section has content.
func fixture() *smartvlc.HealthSnapshot {
	pt := func(i int64, level, loss, ser, goodput float64, bad int64) smartvlc.HealthPoint {
		return smartvlc.HealthPoint{
			Index: i, Start: float64(i) * 0.04, End: float64(i+1) * 0.04,
			Links: 1, WidthSlots: 5000,
			FramesTx: 10, FramesOK: 10 - bad, FramesBad: bad, FramesRetx: bad,
			Symbols: 4000, SymbolErrors: int64(ser * 4000),
			DeliveredBits: int64(goodput * 5000),
			LevelSum:      level * 10, LevelN: 10, MaxLevel: level,
			GoodputTarget: 0.5,
			MeanLevel:     level, SER: ser, FrameLoss: loss, Goodput: goodput,
			RetxRate: float64(bad) / 10,
		}
	}
	pts := []smartvlc.HealthPoint{
		pt(0, 0.50, 0.0, 0, 0.76, 0),
		pt(1, 0.50, 0.0, 0, 0.78, 0),
		pt(2, 0.55, 0.1, 0.002, 0.60, 1),
		pt(3, 0.70, 0.5, 0.010, 0.30, 5),
		pt(4, 0.70, 0.9, 0.040, 0.05, 9),
	}
	obj := func(name string, final smartvlc.HealthState, good int64, burn, at float64) smartvlc.HealthObjectiveReport {
		return smartvlc.HealthObjectiveReport{
			Objective: smartvlc.HealthObjective{
				Name: name, Metric: "frame_loss", Kind: "upper", Target: 0.1,
				FastWindow: 3, SlowWindow: 6, WarnBurn: 1, CritBurn: 8,
			},
			Final: final, GoodBuckets: good, EvalBuckets: 5,
			WorstBurn: burn, WorstAt: at,
		}
	}
	return &smartvlc.HealthSnapshot{
		TSlotSeconds: 8e-6, BucketSlots: 5000, Factor: 5, Sessions: 1,
		Link: "rx0", State: smartvlc.HealthCritical,
		Series: []smartvlc.HealthSeries{{Resolution: 0, BucketSlots: 5000, Points: pts}},
		Objectives: []smartvlc.HealthObjectiveReport{
			obj("loss", smartvlc.HealthCritical, 3, 9.0, 0.2),
		},
		Transitions: []smartvlc.HealthTransition{
			{At: 0.12, Link: "rx0", Objective: "loss", From: smartvlc.HealthOK,
				To: smartvlc.HealthWarning, BurnFast: 2.0, BurnSlow: 1.1, Value: 0.2, Target: 0.1},
			{At: 0.20, Link: "rx0", Objective: "loss", From: smartvlc.HealthWarning,
				To: smartvlc.HealthCritical, BurnFast: 9.0, BurnSlow: 8.2, Value: 0.9, Target: 0.1},
		},
	}
}

func TestRenderGolden(t *testing.T) {
	var buf bytes.Buffer
	render(&buf, fixture(), options{top: 3, width: 4})
	got := buf.Bytes()
	path := filepath.Join("testdata", "render.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("render drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRenderSections spot-checks content without pinning layout: the
// escalation must appear in the transition log, both level bins must get
// rows, and the lossiest bucket must head the worst-window table.
func TestRenderSections(t *testing.T) {
	var buf bytes.Buffer
	render(&buf, fixture(), options{})
	out := buf.String()
	for _, want := range []string{
		"link health: critical",
		"ok → warning",
		"warning → critical",
		"0.5–0.6",
		"0.7–0.8",
		"#4", // lossiest bucket leads the drill-down
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "#4") > strings.Index(out, "#3") {
		t.Error("worst-window table not ranked by loss")
	}
}

// TestRenderEmpty must not panic on a snapshot with no points.
func TestRenderEmpty(t *testing.T) {
	var buf bytes.Buffer
	render(&buf, &smartvlc.HealthSnapshot{State: smartvlc.HealthOK}, options{})
	if !strings.Contains(buf.String(), "link health: ok") {
		t.Fatalf("header missing: %q", buf.String())
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{0, 0.5, 1}, 0, 1); got != "▁▄█" {
		t.Errorf("sparkline = %q, want ▁▄█", got)
	}
	if got := sparkline([]float64{3, 3, 3}, 3, 3); got != "▁▁▁" {
		t.Errorf("flat sparkline = %q, want ▁▁▁", got)
	}
}

func TestDownsample(t *testing.T) {
	pts := make([]smartvlc.HealthPoint, 10)
	for i := range pts {
		pts[i].Goodput = float64(i)
	}
	got := downsample(pts, func(p smartvlc.HealthPoint) float64 { return p.Goodput }, 5)
	want := []float64{0.5, 2.5, 4.5, 6.5, 8.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("downsample = %v, want %v", got, want)
		}
	}
}
