package main

import (
	"fmt"
	"io"

	"smartvlc"
)

// renderFleet writes the fleet operator view of a streaming aggregation
// snapshot (smartvlc-sim -agg-out or GET /fleet): fleet-wide KPI
// timelines over the sealed windows and the worst-sessions tables.
// Output is deterministic given the snapshot, so the view is testable
// against golden files — and the snapshot itself is byte-identical per
// seed, so two operators watching the same fleet see the same tables.
func renderFleet(w io.Writer, s *smartvlc.FleetAggSnapshot, opt options) {
	opt = opt.withDefaults()
	fmt.Fprintf(w, "fleet: %d sessions (%d done), %d windows of %s sealed\n",
		s.Sessions, s.Done, s.SealedWindows, dur(s.WindowSeconds))

	// Open (partial) rollup groups would distort every rate next to their
	// sealed peers, so timelines keep only sealed windows — the same
	// choice the health view makes.
	var finest []smartvlc.FleetAggPoint
	if len(s.Series) > 0 {
		for _, p := range s.Series[0].Points {
			if !p.Partial {
				finest = append(finest, p)
			}
		}
	}
	if len(finest) > 0 {
		fmt.Fprintf(w, "\ntimeline (%s → %s, %d windows):\n",
			dur(finest[0].Start), dur(finest[len(finest)-1].End), len(finest))
		rows := []struct {
			name string
			get  func(p smartvlc.FleetAggPoint) float64
		}{
			{"goodput bps", func(p smartvlc.FleetAggPoint) float64 { return p.GoodputBps }},
			{"ser", func(p smartvlc.FleetAggPoint) float64 { return p.SER }},
			{"burn rate", func(p smartvlc.FleetAggPoint) float64 { return p.BurnRate }},
			{"ack p95", func(p smartvlc.FleetAggPoint) float64 { return p.AckP95 }},
			{"dim level", func(p smartvlc.FleetAggPoint) float64 { return p.MeanLevel }},
		}
		for _, r := range rows {
			vals := downsample(finest, r.get, opt.width)
			lo, hi := bounds(vals)
			fmt.Fprintf(w, "  %-15s %s  [%.3g, %.3g]\n", r.name, sparkline(vals, lo, hi), lo, hi)
		}
	}
	for _, sr := range s.Series {
		if sr.Dropped > 0 {
			fmt.Fprintf(w, "  resolution %d (%s windows): %d oldest points evicted\n",
				sr.Resolution, dur(sr.WindowSeconds), sr.Dropped)
		}
	}

	worstTable(w, "worst sessions by symbol error rate", "ser", s.TopSER, opt,
		func(st smartvlc.FleetSessionStat) string { return fmt.Sprintf("%.2e", st.SER) })
	worstTable(w, "worst sessions by ARQ burn rate", "burn", s.TopBurn, opt,
		func(st smartvlc.FleetSessionStat) string { return fmt.Sprintf("%.3f", st.BurnRate) })
	worstTable(w, "slowest sessions by ACK p95", "ack p95", s.TopAck, opt,
		func(st smartvlc.FleetSessionStat) string { return dur(st.AckP95) })
}

// worstTable prints one ranked worst-sessions table. Rows arrive already
// ranked worst-first from the aggregator; the view truncates to the
// -top bound, never re-sorts.
func worstTable(w io.Writer, title, metric string, rows []smartvlc.FleetSessionStat, opt options, fmtMetric func(smartvlc.FleetSessionStat) string) {
	if len(rows) == 0 {
		return
	}
	if len(rows) > opt.top {
		rows = rows[:opt.top]
	}
	fmt.Fprintf(w, "\n%s:\n", title)
	fmt.Fprintf(w, "  %-4s %-7s %-6s %-8s %8s %10s %10s %6s\n",
		"rank", "session", "seed", "scheme", "windows", metric, "goodput", "done")
	for i, st := range rows {
		done := ""
		if st.Done {
			done = "yes"
		}
		fmt.Fprintf(w, "  %-4d %-7d %-6d %-8s %8d %10s %9.1fk %6s\n",
			i+1, st.Session, st.Seed, st.Scheme, st.Windows,
			fmtMetric(st), st.GoodputBps/1000, done)
	}
}
