// Command vlcdump records, inspects and decodes SmartVLC waveform
// captures (the VLC analogue of tcpdump + pcap).
//
// Usage:
//
//	vlcdump record -o link.vlcd -level 0.3 -frames 5 -distance 3 [-samples]
//	vlcdump info link.vlcd
//	vlcdump decode link.vlcd
//
// `record` synthesizes frames through the simulated link and captures the
// TX slot waveform (and, with -samples, the RX ADC stream). `decode` runs
// the frame parser over slot records and the full sample-domain receiver
// over sample records, printing every recovered frame.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"

	"smartvlc/internal/amppm"
	"smartvlc/internal/frame"
	"smartvlc/internal/optics"
	"smartvlc/internal/photon"
	"smartvlc/internal/phy"
	"smartvlc/internal/scheme"
	"smartvlc/internal/vlcdump"
)

func main() {
	if len(os.Args) < 2 {
		fatal(fmt.Errorf("usage: vlcdump record|info|decode [flags] [file]"))
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "decode":
		err = decode(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fatal(err)
	}
}

func newAMPPM() (*scheme.AMPPM, error) {
	return scheme.NewAMPPM(amppm.DefaultConstraints())
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("o", "capture.vlcd", "output file")
	level := fs.Float64("level", 0.5, "dimming level")
	frames := fs.Int("frames", 5, "number of frames")
	payload := fs.Int("payload", 128, "payload bytes per frame")
	distance := fs.Float64("distance", 3.0, "link distance (meters) for the sample capture")
	ambient := fs.Float64("ambient", 8000, "ambient lux for the sample capture")
	withSamples := fs.Bool("samples", false, "also capture the receiver-side ADC stream")
	seed := fs.Uint64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sch, err := newAMPPM()
	if err != nil {
		return err
	}
	codec, err := sch.CodecFor(*level)
	if err != nil {
		return err
	}
	var slots []bool
	rng := rand.New(rand.NewPCG(*seed, 0xCAFE))
	for i := 0; i < *frames; i++ {
		body := make([]byte, *payload)
		for j := range body {
			body[j] = byte(rng.Uint64())
		}
		fslots, err := frame.Build(codec, body)
		if err != nil {
			return err
		}
		slots = append(slots, fslots...)
		slots = frame.AppendIdle(slots, codec.Level(), 48)
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := vlcdump.NewWriter(f, 8e-6)
	if err != nil {
		return err
	}
	note := fmt.Sprintf("smartvlc capture: scheme=AMPPM level=%.3f frames=%d payload=%dB", codec.Level(), *frames, *payload)
	if err := w.WriteNote(note); err != nil {
		return err
	}
	if err := w.WriteSlots(slots); err != nil {
		return err
	}
	if *withSamples {
		ch, err := photon.DefaultLinkBudget().ChannelAt(optics.Aligned(*distance, 0), *ambient)
		if err != nil {
			return err
		}
		link := phy.DefaultLink(ch)
		link.StartPhase = rng.Float64()
		samples := link.Transmit(rng, slots)
		if err := w.WriteNote(fmt.Sprintf("rx samples: d=%.2fm ambient=%.0flux", *distance, *ambient)); err != nil {
			return err
		}
		if err := w.WriteSamples(samples); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d slots (%.2f ms of air time)\n", *out, len(slots), float64(len(slots))*8e-3)
	return nil
}

func openCapture(args []string) (*vlcdump.Reader, *os.File, error) {
	if len(args) < 1 {
		return nil, nil, fmt.Errorf("missing capture file")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return nil, nil, err
	}
	r, err := vlcdump.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}

func info(args []string) error {
	r, f, err := openCapture(args)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Printf("capture: tslot=%.1fµs\n", r.SlotSeconds*1e6)
	for i := 0; ; i++ {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch rec.Kind {
		case vlcdump.KindNote:
			fmt.Printf("record %d: note  %q\n", i, rec.Note)
		case vlcdump.KindSlots:
			on := 0
			for _, s := range rec.Slots {
				if s {
					on++
				}
			}
			fmt.Printf("record %d: slots %d (%.2f ms, duty %.3f)\n",
				i, len(rec.Slots), float64(len(rec.Slots))*r.SlotSeconds*1000, float64(on)/float64(max(1, len(rec.Slots))))
		case vlcdump.KindSamples:
			fmt.Printf("record %d: samples %d (%.2f ms at 4x oversampling)\n",
				i, len(rec.Samples), float64(len(rec.Samples))*r.SlotSeconds/4*1000)
		}
	}
	return nil
}

func decode(args []string) error {
	r, f, err := openCapture(args)
	if err != nil {
		return err
	}
	defer f.Close()
	sch, err := newAMPPM()
	if err != nil {
		return err
	}
	for i := 0; ; i++ {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch rec.Kind {
		case vlcdump.KindNote:
			fmt.Printf("# %s\n", rec.Note)
		case vlcdump.KindSlots:
			decodeSlots(i, rec.Slots, sch)
		case vlcdump.KindSamples:
			decodeSamples(i, rec.Samples, sch)
		}
	}
	return nil
}

func decodeSlots(idx int, slots []bool, sch *scheme.AMPPM) {
	n := 0
	for off := 0; off+frame.PreambleSlots < len(slots); {
		if !frame.PreambleAt(slots[off:]) {
			off++
			continue
		}
		res, err := frame.Parse(slots[off:], sch.Factory())
		if err != nil {
			off++
			continue
		}
		fmt.Printf("record %d @slot %d: frame len=%dB pattern=% x payload[0:8]=% x\n",
			idx, off, res.Header.Length, res.Header.Pattern, head(res.Payload, 8))
		off += res.SlotsConsumed
		n++
	}
	fmt.Printf("record %d: %d frame(s) in slot waveform\n", idx, n)
}

func decodeSamples(idx int, samples []int, sch *scheme.AMPPM) {
	thr := autoThreshold(samples)
	rx := phy.NewReceiverWithThreshold(thr, sch.Factory())
	results, stats := rx.Process(samples)
	for _, res := range results {
		fmt.Printf("record %d: frame len=%dB pattern=% x payload[0:8]=% x\n",
			idx, res.Header.Length, res.Header.Pattern, head(res.Payload, 8))
	}
	fmt.Printf("record %d: %d frame(s) in sample stream (auto threshold %d, %v)\n", idx, len(results), thr, stats)
}

// autoThreshold picks a detection threshold from the sample histogram
// alone (no channel knowledge): midway between the dark and bright
// population medians, scaled to the 3-sample window.
func autoThreshold(samples []int) int {
	if len(samples) == 0 {
		return 1
	}
	lo, hi := samples[0], samples[0]
	for _, s := range samples {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	mid := (lo + hi) / 2
	var darkSum, darkN, brightSum, brightN int
	for _, s := range samples {
		if s <= mid {
			darkSum += s
			darkN++
		} else {
			brightSum += s
			brightN++
		}
	}
	if darkN == 0 || brightN == 0 {
		return 3 * (mid + 1)
	}
	perSample := (darkSum/darkN + brightSum/brightN) / 2
	return 3 * perSample
}

func head(b []byte, n int) []byte {
	if len(b) < n {
		return b
	}
	return b[:n]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vlcdump:", err)
	os.Exit(1)
}
