// Command vlclog analyzes SmartVLC structured log exports: filtered
// tails of NDJSON log snapshots (the smartvlc-sim -log-out artifact or a
// flight bundle's logs.ndjson), and the joined incident timeline that
// interleaves a bundle's log tail with its span tree and its histogram
// exemplars on the shared simulation clock — the blind-pull view of an
// SLO burn.
//
// The rendering lives in internal/telemetry/vlog/analyze (tested against
// golden outputs); this command only loads inputs and picks the mode.
//
// Usage:
//
//	vlclog tail logs.ndjson     filtered tail of one log export
//	vlclog join BUNDLE_DIR      joined timeline of a flight bundle's
//	                            logs.ndjson, spans.json and metrics.json
//
// Flags:
//
//	-n N       keep only the last N records after filtering (tail mode;
//	           0 keeps all)
//	-level L   minimum level: debug, info, warn, error (default debug)
//	-stage S   keep records of stage S or below it ("phy" keeps
//	           "phy/decode" and "phy/hunt")
//	-seq N     keep records of frame sequence N only (-1 keeps all)
package main

import (
	"flag"
	"fmt"
	"os"

	"smartvlc/internal/telemetry/flight"
	"smartvlc/internal/telemetry/vlog"
	"smartvlc/internal/telemetry/vlog/analyze"
)

func main() {
	n := flag.Int("n", 0, "keep only the last N records after filtering (0 = all)")
	level := flag.String("level", "debug", "minimum level: debug, info, warn, error")
	stage := flag.String("stage", "", "keep records of this stage or below it")
	seq := flag.Int64("seq", -1, "keep records of this frame sequence only (-1 = all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vlclog [flags] tail|join PATH\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	min, ok := vlog.ParseLevel(*level)
	if !ok {
		fmt.Fprintf(os.Stderr, "vlclog: unknown level %q\n", *level)
		os.Exit(2)
	}
	opt := analyze.Options{MinLevel: min, Stage: *stage, Tail: *n}
	if *seq >= 0 {
		opt.Seq, opt.FilterSeq = *seq, true
	}
	var err error
	switch flag.Arg(0) {
	case "tail":
		err = tailLogs(flag.Arg(1), opt)
	case "join":
		err = joinBundle(flag.Arg(1), opt)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vlclog: %v\n", err)
		os.Exit(1)
	}
}

func tailLogs(path string, opt analyze.Options) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap, err := vlog.ParseNDJSON(f)
	if err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	analyze.Report(os.Stdout, snap, opt)
	return nil
}

func joinBundle(dir string, opt analyze.Options) error {
	b, err := flight.ReadBundle(dir)
	if err != nil {
		return err
	}
	if b.Logs == nil && b.Spans == nil && b.Metrics == nil {
		return fmt.Errorf("bundle %s has no logs, spans or metrics to join", dir)
	}
	fmt.Printf("bundle: %s\ntrigger: %s (class %q) at seq %d, t=%s\n\n",
		dir, b.Meta.Reason, b.Meta.Class, b.Meta.Seq, analyze.Dur(b.Meta.At))
	analyze.Join(os.Stdout, analyze.JoinInput{Logs: b.Logs, Spans: b.Spans, Metrics: b.Metrics}, opt)
	return nil
}
