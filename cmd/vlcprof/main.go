// Command vlcprof analyzes SmartVLC stage-cost profiles — the
// deterministic, sim-domain twin of a CPU profile that sessions export
// when SessionConfig.Prof is armed (smartvlc-sim -prof-out). It answers
// "where does the simulated pipeline spend its work" without a single
// wall-clock measurement, so two runs of one seed always agree.
//
// The rendering lives in internal/telemetry/prof/analyze (tested against
// pinned outputs); this command only loads inputs and picks the mode.
//
// Usage:
//
//	vlcprof top A.json            top-k stages by the selected metric
//	vlcprof levels A.json         per-dimming-level cost curves per stage
//	vlcprof folded A.json         folded stacks (flame-graph input) to stdout
//	vlcprof diff A.json B.json    series-by-series diff; names the top
//	                              regression, or reports a zero delta —
//	                              the determinism check for same-seed runs
//	vlcprof trend HISTORY.jsonl   newest run vs rolling median of the
//	                              bench history; names the regressing
//	                              stage and exits 1 on regression
//
// Flags:
//
//	-metric M      cost dimension: ops, samples, slots, symbols, bytes,
//	               allocs (default samples)
//	-top N         rows in the top/diff tables (default 10)
//	-window N      trend: rolling-median window in runs (default 5, 0 = all)
//	-tolerance F   trend: fractional slowdown allowed (default 0.05)
package main

import (
	"flag"
	"fmt"
	"os"

	"smartvlc/internal/bench"
	"smartvlc/internal/telemetry/prof"
	"smartvlc/internal/telemetry/prof/analyze"
)

func main() {
	metric := flag.String("metric", "samples", "cost dimension: ops, samples, slots, symbols, bytes, allocs")
	top := flag.Int("top", 10, "rows in the top/diff tables")
	window := flag.Int("window", 5, "trend: rolling-median window in runs (0 = all)")
	tolerance := flag.Float64("tolerance", 0.05, "trend: fractional slowdown allowed")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vlcprof [flags] top|levels|folded PROFILE | diff A B | trend HISTORY\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	m := prof.Metric(*metric)
	valid := false
	for _, known := range prof.Metrics() {
		if m == known {
			valid = true
		}
	}
	if !valid {
		fmt.Fprintf(os.Stderr, "vlcprof: unknown metric %q\n", *metric)
		os.Exit(2)
	}
	opt := analyze.Options{Metric: m, Top: *top}

	var err error
	switch mode, n := flag.Arg(0), flag.NArg(); {
	case mode == "top" && n == 2:
		err = withSnapshot(flag.Arg(1), func(s *prof.Snapshot) error {
			analyze.ReportTop(os.Stdout, s, opt)
			return nil
		})
	case mode == "levels" && n == 2:
		err = withSnapshot(flag.Arg(1), func(s *prof.Snapshot) error {
			analyze.ReportLevels(os.Stdout, s, opt)
			return nil
		})
	case mode == "folded" && n == 2:
		err = withSnapshot(flag.Arg(1), func(s *prof.Snapshot) error {
			return s.WriteFolded(os.Stdout, m)
		})
	case mode == "diff" && n == 3:
		err = runDiff(flag.Arg(1), flag.Arg(2), opt)
	case mode == "trend" && n == 2:
		err = runTrend(flag.Arg(1), *window, *tolerance)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vlcprof: %v\n", err)
		os.Exit(1)
	}
}

func withSnapshot(path string, fn func(*prof.Snapshot) error) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	snap, err := prof.ParseSnapshot(b)
	if err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	return fn(snap)
}

func runDiff(pathA, pathB string, opt analyze.Options) error {
	return withSnapshot(pathA, func(a *prof.Snapshot) error {
		return withSnapshot(pathB, func(b *prof.Snapshot) error {
			analyze.ReportDiff(os.Stdout, a, b, opt)
			return nil
		})
	})
}

func runTrend(path string, window int, tolerance float64) error {
	recs, err := bench.ReadHistory(path)
	if err != nil {
		return err
	}
	if analyze.ReportHistory(os.Stdout, recs, window, tolerance) {
		os.Exit(1)
	}
	return nil
}
